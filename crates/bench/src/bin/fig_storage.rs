//! Storage-backend study: the same Nyx_1 snapshot written through the
//! file and sharded backends, then read back with cold / cached /
//! parallel ROI queries against both. Verifies bitwise equality of every
//! query answer across backends before timing anything, prints the
//! wall-clock table, and emits `BENCH_storage.json` for the trajectory
//! tracker.
//!
//! On single-core hosts expect the backends to tie; the sharded fan-out
//! win (independent file descriptors under parallel prefetch) appears
//! with real cores and real devices.

use amr_mesh::{IntBox, IntVect};
use amr_query::{LevelSelect, QueryEngine, RegionView};
use amric::prelude::*;
use amric_bench::{default_workers, print_table, scratch, secs, table1_runs};
use std::io::Write;
use std::time::Instant;

struct Point {
    backend: &'static str,
    series: &'static str,
    workers: usize,
    ms_per_iter: f64,
}

fn time_iters(iters: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up pass, excluded from timing
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_secs_f64() * 1000.0 / iters as f64
}

fn view_bits(v: &RegionView) -> Vec<u64> {
    v.levels
        .iter()
        .flat_map(|l| l.data.data().iter().map(|x| x.to_bits()))
        .collect()
}

fn main() {
    let spec = table1_runs()
        .into_iter()
        .find(|s| s.name == "Nyx_1")
        .expect("Nyx_1");
    let h = spec.build(0.0);
    let iters: usize = std::env::var("AMRIC_STORAGE_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let shards = 4usize;
    let cfg = AmricConfig::lr(spec.amric_rel_eb);
    let fp = scratch("fig-storage-file");
    let sp = scratch("fig-storage-sharded");

    let mut points = Vec::new();

    // Write side: one timed series per backend, identical payload.
    let file_write_ms = time_iters(iters.clamp(1, 5), || {
        write_amric(&fp, &h, &cfg, spec.blocking_factor).expect("file write");
    });
    points.push(Point {
        backend: "file",
        series: "write",
        workers: 1,
        ms_per_iter: file_write_ms,
    });
    let sharded_write_ms = time_iters(iters.clamp(1, 5), || {
        write_amric_sharded(&sp, shards, &h, &cfg, spec.blocking_factor).expect("sharded write");
    });
    points.push(Point {
        backend: "sharded",
        series: "write",
        workers: 1,
        ms_per_iter: sharded_write_ms,
    });
    let rf = write_amric(&fp, &h, &cfg, spec.blocking_factor).expect("file write");
    let rs = write_amric_sharded(&sp, shards, &h, &cfg, spec.blocking_factor).expect("shard write");
    assert_eq!(
        rf.stored_bytes, rs.stored_bytes,
        "backends stored different payloads"
    );

    // Correctness gate before any read timing: the probe ROI answers
    // bitwise-identical across backends (cold engines on both sides).
    let roi = IntBox::new(IntVect::new(8, 8, 8), IntVect::new(23, 23, 23));
    {
        let ef = QueryEngine::open(&fp).expect("open file");
        let es = QueryEngine::open(&sp).expect("open sharded");
        for field in 0..3 {
            let a = ef.roi(field, roi, LevelSelect::All).expect("file roi");
            let b = es.roi(field, roi, LevelSelect::All).expect("sharded roi");
            assert_eq!(
                view_bits(&a),
                view_bits(&b),
                "field {field}: sharded ROI diverges from single-file"
            );
        }
    }

    // Read side: cold, cached, and parallel-cold per backend.
    let workers = default_workers().max(4);
    for (backend, path) in [("file", &fp), ("sharded", &sp)] {
        let cold_ms = time_iters(iters, || {
            let engine = QueryEngine::open(path).expect("open");
            engine.roi(0, roi, LevelSelect::All).expect("roi");
        });
        points.push(Point {
            backend,
            series: "roi_cold",
            workers: 1,
            ms_per_iter: cold_ms,
        });
        let warm = QueryEngine::open(path).expect("open");
        warm.roi(0, roi, LevelSelect::All).expect("roi");
        let warm_ms = time_iters(iters, || {
            warm.roi(0, roi, LevelSelect::All).expect("roi");
        });
        assert!(warm.cache_stats().hits > 0, "{backend}: cache never hit");
        points.push(Point {
            backend,
            series: "roi_cached",
            workers: 1,
            ms_per_iter: warm_ms,
        });
        let par_ms = time_iters(iters, || {
            let engine = QueryEngine::open(path).expect("open").with_workers(workers);
            engine.roi(0, roi, LevelSelect::All).expect("roi");
        });
        points.push(Point {
            backend,
            series: "roi_cold_parallel",
            workers,
            ms_per_iter: par_ms,
        });
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.backend.to_string(),
                p.series.to_string(),
                p.workers.to_string(),
                secs(p.ms_per_iter / 1000.0),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Storage backends (Nyx_1, {shards} shards, {iters} iters/point, {} cores available)",
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        ),
        &["backend", "series", "workers", "s/iter"],
        &rows,
    );

    // Trajectory file: hand-rolled JSON (no serde in-tree).
    let mut json = String::from("{\n  \"bench\": \"storage\",\n  \"run\": \"Nyx_1\",\n");
    json.push_str(&format!(
        "  \"shards\": {shards},\n  \"cores\": {},\n  \"iters_per_point\": {iters},\n  \"series\": [\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    ));
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"backend\": \"{}\", \"series\": \"{}\", \"workers\": {}, \"ms_per_iter\": {:.3}}}{}\n",
            p.backend,
            p.series,
            p.workers,
            p.ms_per_iter,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"sharded_write_overhead\": {:.3}\n}}\n",
        sharded_write_ms / file_write_ms
    ));
    let out = std::env::var("AMRIC_BENCH_OUT").unwrap_or_else(|_| "BENCH_storage.json".into());
    let mut f = std::fs::File::create(&out).expect("create trajectory file");
    f.write_all(json.as_bytes()).expect("write trajectory file");
    println!("\nwrote {out}");
    std::fs::remove_file(&fp).ok();
    std::fs::remove_dir_all(&sp).ok();
}
