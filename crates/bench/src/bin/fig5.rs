//! Figure 5: rate-distortion (PSNR vs CR) of the linear vs cluster unit
//! block arrangements under SZ_Interp, on the fine (sparse) and coarse
//! (dense) levels of the §3 Nyx study.

use amr_apps::level_stats;
use amric::pipeline::{compress_field_units, decompress_field_units};
use amric_bench::{
    amric_interp, f1, f2, level_units, print_table, rate_point, rd_bounds, section3_nyx,
};

fn main() {
    let h = section3_nyx(64);
    let stats = level_stats(&h);
    let cov =
        amr_mesh::overlap::coverage(h.level(0).data.box_array(), h.level(1).data.box_array(), 2);
    let cov_summary = amr_mesh::overlap::summarize(&cov, h.level(0).data.box_array());
    println!(
        "section-3 Nyx study: fine density {:.1}% (paper: 17.4%), coarse valid {:.1}% (paper: 82.3%)",
        stats[1].density * 100.0,
        cov_summary.kept_fraction() * 100.0
    );
    for (label, level, unit) in [("Fine level", 1usize, 16i64), ("Coarse level", 0, 8)] {
        let units = level_units(&h, level, unit, 0);
        let mut rows = Vec::new();
        for rel_eb in rd_bounds() {
            let point = |cluster: bool| {
                let cfg = amric_interp(rel_eb).with_cluster_arrangement(cluster);
                rate_point(
                    &units,
                    |u| compress_field_units(u, &cfg, unit as usize),
                    |b| decompress_field_units(b).expect("decode"),
                )
            };
            let (cr_lin, psnr_lin) = point(false);
            let (cr_clu, psnr_clu) = point(true);
            rows.push(vec![
                format!("{rel_eb:.0e}"),
                f1(cr_lin),
                f2(psnr_lin),
                f1(cr_clu),
                f2(psnr_clu),
            ]);
        }
        print_table(
            &format!("Figure 5 ({label}, unit={unit}): linear vs cluster arrangement, SZ_Interp"),
            &[
                "rel_eb",
                "CR(linear)",
                "PSNR(linear)",
                "CR(cluster)",
                "PSNR(cluster)",
            ],
            &rows,
        );
    }
    println!(
        "\nPaper Fig. 5 reports cluster ≥ linear at matched PSNR. Our from-scratch\nSZ_Interp reproduces the *coarse-level* near-tie but shows linear ahead on\nthe fine level: a linear (16,16,N) column keeps two of three interpolation\naxes entirely inside unit blocks, while the cube packing crosses block\nboundaries in all three. See EXPERIMENTS.md for the full analysis of this\ndeviation (it hinges on SZ3's dynamic interpolation-direction tuning,\nwhich stock SZ_Interp here does not implement)."
    );
}
