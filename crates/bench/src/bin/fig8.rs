//! Figure 8: the residue-partition geometry behind the adaptive block
//! size. Prints the sub-block census of truncating an 8³ unit with 6³
//! (paper Fig. 8a) vs 4³ (Fig. 8b), plus the degenerate-cell fractions
//! Equation 1 responds to for typical unit sizes.

use amric_bench::print_table;
use sz_codec::adaptive::{adaptive_block_size, PartitionCensus};

fn main() {
    for sz in [6usize, 4] {
        let c = PartitionCensus::of(8, sz);
        print_table(
            &format!("Figure 8: 8³ unit block cut by {sz}³ SZ blocks"),
            &["full 3-D", "flat (~2-D)", "slim (~1-D)", "tiny (~0-D)"],
            &[vec![
                c.full.to_string(),
                c.flat.to_string(),
                c.slim.to_string(),
                c.tiny.to_string(),
            ]],
        );
    }
    let rows: Vec<Vec<String>> = [8usize, 16, 32, 64, 128]
        .iter()
        .map(|&unit| {
            vec![
                unit.to_string(),
                format!("{}", unit % 6),
                format!(
                    "{:.1}%",
                    PartitionCensus::degenerate_cell_fraction(unit, 6) * 100.0
                ),
                format!(
                    "{:.1}%",
                    PartitionCensus::degenerate_cell_fraction(unit, 4) * 100.0
                ),
                format!("{}³", adaptive_block_size(unit)),
            ]
        })
        .collect();
    print_table(
        "Equation 1: adaptive SZ block size per unit size",
        &[
            "unit",
            "unit mod 6",
            "degen cells @6³",
            "degen cells @4³",
            "Eq.1 choice",
        ],
        &rows,
    );
    println!(
        "\nExpected shape (paper Fig. 8 / Eq. 1): 8³ cut by 6³ leaves 1 full, 3 flat,\n3 slim, 1 tiny; 4³ leaves none. Eq. 1 picks 4³ exactly when mod-6 residue ≤ 2\nand the unit is < 64."
    );
}
