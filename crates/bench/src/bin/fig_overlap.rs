//! Overlap study: serial vs parallel end-to-end in-situ write on the
//! Table-1 Nyx_1 run, sweeping the rank-local worker count. Prints the
//! wall-clock table and emits `BENCH_io_pipeline.json` (serial and
//! parallel series) for the trajectory tracker.
//!
//! The parallel path is byte-identical to serial (the determinism suite
//! enforces it); this binary verifies the stored sizes agree on every
//! run, then reports only wall-clock differences. On single-core hosts
//! expect parity; the overlap win appears with real cores.

use amric::prelude::*;
use amric_bench::{default_workers, print_table, scratch, secs, table1_runs};
use std::io::Write;
use std::time::Instant;

/// One measured series point.
struct Point {
    method: &'static str,
    workers: usize,
    ms_per_iter: f64,
    stored_bytes: u64,
}

fn measure(
    h: &amr_mesh::hierarchy::AmrHierarchy,
    method: &'static str,
    cfg: &AmricConfig,
    bf: i64,
    workers: usize,
    iters: usize,
) -> Point {
    let cfg = cfg.with_workers(workers);
    // Warm-up write (page cache, allocator) excluded from timing.
    let warm = scratch(&format!("fig-overlap-warm-{method}-{workers}"));
    let report = write_amric(&warm, h, &cfg, bf).expect("write");
    let stored_bytes = report.stored_bytes;
    std::fs::remove_file(&warm).ok();
    let t0 = Instant::now();
    for i in 0..iters {
        let path = scratch(&format!("fig-overlap-{method}-{workers}-{i}"));
        let r = write_amric(&path, h, &cfg, bf).expect("write");
        assert_eq!(
            r.stored_bytes, stored_bytes,
            "{method} workers={workers}: stored size varied across runs"
        );
        std::fs::remove_file(&path).ok();
    }
    Point {
        method,
        workers,
        ms_per_iter: t0.elapsed().as_secs_f64() * 1000.0 / iters as f64,
        stored_bytes,
    }
}

fn main() {
    let spec = table1_runs()
        .into_iter()
        .find(|s| s.name == "Nyx_1")
        .expect("Nyx_1");
    let h = spec.build(0.0);
    let iters: usize = std::env::var("AMRIC_OVERLAP_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let max_workers = default_workers().max(4);
    let mut sweep: Vec<usize> = vec![1, 2, 4];
    if !sweep.contains(&max_workers) {
        sweep.push(max_workers);
    }

    let mut points = Vec::new();
    for &w in &sweep {
        points.push(measure(
            &h,
            "amric_lr",
            &AmricConfig::lr(spec.amric_rel_eb),
            spec.blocking_factor,
            w,
            iters,
        ));
        points.push(measure(
            &h,
            "amric_interp",
            &AmricConfig::interp(spec.amric_rel_eb),
            spec.blocking_factor,
            w,
            iters,
        ));
    }

    // Byte-identity across the sweep: same method ⇒ same stored size.
    for m in ["amric_lr", "amric_interp"] {
        let sizes: Vec<u64> = points
            .iter()
            .filter(|p| p.method == m)
            .map(|p| p.stored_bytes)
            .collect();
        assert!(
            sizes.windows(2).all(|w| w[0] == w[1]),
            "{m}: stored bytes changed with worker count: {sizes:?}"
        );
    }

    let serial_ms = |m: &str| {
        points
            .iter()
            .find(|p| p.method == m && p.workers == 1)
            .map(|p| p.ms_per_iter)
            .unwrap_or(f64::NAN)
    };
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.method.to_string(),
                p.workers.to_string(),
                secs(p.ms_per_iter / 1000.0),
                format!("{:.2}x", serial_ms(p.method) / p.ms_per_iter),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Overlapped write path (Nyx_1, {} iters/point, {} cores available)",
            iters,
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        ),
        &["method", "workers", "s/iter", "speedup vs serial"],
        &rows,
    );

    // Trajectory file: hand-rolled JSON (no serde in-tree).
    let mut json = String::from("{\n  \"bench\": \"io_pipeline\",\n  \"run\": \"Nyx_1\",\n");
    json.push_str(&format!(
        "  \"cores\": {},\n  \"iters_per_point\": {iters},\n  \"series\": [\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    ));
    for (i, p) in points.iter().enumerate() {
        let mode = if p.workers == 1 { "serial" } else { "parallel" };
        json.push_str(&format!(
            "    {{\"method\": \"{}\", \"mode\": \"{mode}\", \"workers\": {}, \"ms_per_iter\": {:.3}, \"stored_bytes\": {}}}{}\n",
            p.method,
            p.workers,
            p.ms_per_iter,
            p.stored_bytes,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    let speedup = |m: &str| {
        let best = points
            .iter()
            .filter(|p| p.method == m && p.workers > 1)
            .map(|p| serial_ms(m) / p.ms_per_iter)
            .fold(f64::NAN, f64::max);
        best
    };
    json.push_str(&format!(
        "  \"best_parallel_speedup\": {{\"amric_lr\": {:.3}, \"amric_interp\": {:.3}}}\n}}\n",
        speedup("amric_lr"),
        speedup("amric_interp")
    ));
    let out = std::env::var("AMRIC_BENCH_OUT").unwrap_or_else(|_| "BENCH_io_pipeline.json".into());
    let mut f = std::fs::File::create(&out).expect("create trajectory file");
    f.write_all(json.as_bytes()).expect("write trajectory file");
    println!("\nwrote {out}");
}
