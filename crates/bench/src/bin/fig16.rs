//! Figure 16: rate-distortion of AMRIC vs TAC (the offline HPDC '22
//! comparator) on a TAC-style dataset — a synthetic stand-in for the
//! Run1_Z10 Nyx export used in the paper (see README.md substitutions).

use amr_mesh::IntVect;
use amric::pipeline::{compress_field_units, decompress_field_units, resolve_abs_eb};
use amric::preprocess::{extract_units, plan_units};
use amric::tac::{tac_compress, tac_decompress};
use amric_bench::{amric_lr, f1, f2, print_table, rd_bounds, section3_nyx};
use sz_codec::prelude::*;

fn main() {
    let h = section3_nyx(64);
    // TAC operates on the fine level's unit blocks with their positions.
    let plan = plan_units(&h.level(1).data, None, 16, 0, true);
    let units = extract_units(&h.level(1).data, &plan, 0);
    let origins: Vec<IntVect> = plan.iter().map(|u| u.region.lo).collect();
    let orig_bytes: usize = units.iter().map(|u| u.dims().len() * 8).sum();
    let orig: Vec<f64> = units
        .iter()
        .flat_map(|u| u.data().iter().copied())
        .collect();

    let mut rows = Vec::new();
    for rel_eb in rd_bounds() {
        let _abs = resolve_abs_eb(&units, rel_eb);
        // TAC.
        let tac_stream = tac_compress(&units, &origins, rel_eb);
        let tac_back = tac_decompress(&tac_stream).expect("tac decode");
        let tac_rec: Vec<f64> = tac_back
            .iter()
            .flat_map(|u| u.data().iter().copied())
            .collect();
        let tac_stats = ErrorStats::compare(&orig, &tac_rec);
        // AMRIC (optimized SZ_L/R).
        let cfg = amric_lr(rel_eb);
        let am_stream = compress_field_units(&units, &cfg, 16);
        let am_back = decompress_field_units(&am_stream).expect("amric decode");
        let am_rec: Vec<f64> = am_back
            .iter()
            .flat_map(|u| u.data().iter().copied())
            .collect();
        let am_stats = ErrorStats::compare(&orig, &am_rec);
        rows.push(vec![
            format!("{rel_eb:.0e}"),
            f1(orig_bytes as f64 / tac_stream.len() as f64),
            f2(tac_stats.psnr()),
            f1(orig_bytes as f64 / am_stream.len() as f64),
            f2(am_stats.psnr()),
        ]);
    }
    print_table(
        "Figure 16: TAC vs AMRIC rate-distortion (TAC-style fine-level dataset)",
        &["rel_eb", "CR(TAC)", "PSNR(TAC)", "CR(AMRIC)", "PSNR(AMRIC)"],
        &rows,
    );
    println!(
        "\nExpected shape (paper Fig. 16): AMRIC's curve dominates — up to ~2×\nhigher CR at matched PSNR — because TAC treats SZ_L/R as a black box\n(per-group Huffman trees, no SLE, no adaptive block size)."
    );
}
