//! Temporal-compression study: a time series written three ways at the
//! same error bound — the cross-snapshot temporal session (delta coding
//! against the previous snapshot's decoded state), per-snapshot SZ_L/R
//! (the AMRIC pipeline, re-coding every snapshot from scratch), and a
//! spatial-only temporal session (fresh reference chain every snapshot,
//! isolating the envelope overhead from the delta win).
//!
//! Two regrid regimes bracket the design space:
//!
//! * `stable` — Nyx at a small dt; the hierarchy holds still, almost
//!   every unit delta-codes, and the temporal session must beat
//!   per-snapshot LR outright.
//! * `regrid` — WarpX at a dt violent enough that the fine level
//!   relocates every step; most units fall back to the spatial path and
//!   the session must cost no more than spatial-only coding (the
//!   fallback rule's overhead bound).
//!
//! Emits `BENCH_temporal.json`. Both acceptance inequalities are
//! asserted here, so CI smoke runs fail loudly if a regression breaks
//! either regime. Committed numbers come from the 1-core CI container.

use amr_apps::prelude::*;
use amr_mesh::AmrHierarchy;
use amric::prelude::*;
use amric::temporal::{TemporalSession, TemporalSessionConfig};
use amric_bench::print_table;
use h5lite::H5Writer;
use std::io::Write;
use std::sync::Arc;

const REL_EB: f64 = 1e-3;

struct SchedulePoint {
    schedule: &'static str,
    step: usize,
    regrid_change: f64,
    orig_bytes: u64,
    temporal_bytes: u64,
    lr_bytes: u64,
    spatial_only_bytes: u64,
}

fn temporal_in_memory(session: &mut TemporalSession, h: &AmrHierarchy) -> u64 {
    let (w, _mem) = H5Writer::in_memory();
    session
        .write_to(Arc::new(w), h)
        .expect("temporal write")
        .stored_bytes
}

fn lr_in_memory(h: &AmrHierarchy, bf: i64) -> u64 {
    let (w, _mem) = H5Writer::in_memory();
    write_amric_to(Arc::new(w), h, &AmricConfig::lr(REL_EB), bf)
        .expect("lr write")
        .stored_bytes
}

fn run_schedule(
    schedule: &'static str,
    scenario: &dyn Scenario,
    cfg: AmrRunConfig,
    bf: i64,
    dt: f64,
    nsteps: usize,
    points: &mut Vec<SchedulePoint>,
) {
    let mut session = TemporalSession::new(TemporalSessionConfig::new(REL_EB), bf);
    let mut spatial_only = TemporalSession::new(TemporalSessionConfig::new(REL_EB), bf);
    let mut prev: Option<AmrHierarchy> = None;
    for (step, _, h) in TimeSeries::new(scenario, cfg, dt, nsteps) {
        let change = prev.as_ref().map_or(0.0, |p| regrid_change(p, &h));
        let temporal_bytes = temporal_in_memory(&mut session, &h);
        spatial_only.reset_reference();
        let spatial_only_bytes = temporal_in_memory(&mut spatial_only, &h);
        points.push(SchedulePoint {
            schedule,
            step,
            regrid_change: change,
            orig_bytes: h.snapshot_bytes(),
            temporal_bytes,
            lr_bytes: lr_in_memory(&h, bf),
            spatial_only_bytes,
        });
        prev = Some(h);
    }
}

fn totals(points: &[SchedulePoint], schedule: &str) -> (u64, u64, u64, u64) {
    points
        .iter()
        .filter(|p| p.schedule == schedule)
        .fold((0, 0, 0, 0), |acc, p| {
            (
                acc.0 + p.orig_bytes,
                acc.1 + p.temporal_bytes,
                acc.2 + p.lr_bytes,
                acc.3 + p.spatial_only_bytes,
            )
        })
}

fn main() {
    let nsteps: usize = std::env::var("AMRIC_TEMPORAL_STEPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6)
        .max(2);
    let mut points = Vec::new();

    let stable_cfg = AmrRunConfig {
        coarse_dims: (32, 32, 32),
        max_grid_size: 16,
        blocking_factor: 8,
        nranks: 2,
        num_levels: 2,
        fine_fraction: 0.05,
        grid_eff: 0.7,
    };
    run_schedule(
        "stable",
        &NyxScenario::new(11),
        stable_cfg,
        8,
        0.02,
        nsteps,
        &mut points,
    );

    let regrid_cfg = AmrRunConfig {
        coarse_dims: (8, 8, 64),
        max_grid_size: 16,
        blocking_factor: 4,
        nranks: 2,
        num_levels: 2,
        fine_fraction: 0.03,
        grid_eff: 0.7,
    };
    run_schedule(
        "regrid",
        &WarpXScenario::new(4),
        regrid_cfg,
        4,
        0.4,
        nsteps,
        &mut points,
    );

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.schedule.to_string(),
                p.step.to_string(),
                format!("{:.3}", p.regrid_change),
                format!("{:.2}", p.orig_bytes as f64 / p.temporal_bytes as f64),
                format!("{:.2}", p.orig_bytes as f64 / p.lr_bytes as f64),
                format!("{:.2}", p.orig_bytes as f64 / p.spatial_only_bytes as f64),
            ]
        })
        .collect();
    print_table(
        &format!("Temporal vs per-snapshot compression (rel_eb {REL_EB}, {nsteps} steps)"),
        &[
            "schedule",
            "step",
            "regrid",
            "CR temporal",
            "CR lr",
            "CR spatial-only",
        ],
        &rows,
    );

    // Acceptance inequalities (the fallback rule's contract).
    let (_, stable_t, stable_lr, _) = totals(&points, "stable");
    assert!(
        stable_t < stable_lr,
        "stable series: temporal {stable_t} B must beat per-snapshot LR {stable_lr} B"
    );
    let (_, regrid_t, _, regrid_sp) = totals(&points, "regrid");
    assert!(
        regrid_t as f64 <= regrid_sp as f64 * 1.03,
        "regrid series: temporal {regrid_t} B must stay within 3% of spatial-only {regrid_sp} B"
    );
    println!(
        "\nstable: temporal/lr = {:.3}   regrid: temporal/spatial-only = {:.3}",
        stable_t as f64 / stable_lr as f64,
        regrid_t as f64 / regrid_sp as f64
    );

    // Trajectory file: hand-rolled JSON (no serde in-tree).
    let mut json = String::from("{\n  \"bench\": \"temporal\",\n");
    json.push_str(&format!(
        "  \"rel_eb\": {REL_EB},\n  \"nsteps\": {nsteps},\n  \"cores\": {},\n  \"points\": [\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    ));
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"schedule\": \"{}\", \"step\": {}, \"regrid_change\": {:.4}, \"orig_bytes\": {}, \"temporal_bytes\": {}, \"lr_bytes\": {}, \"spatial_only_bytes\": {}}}{}\n",
            p.schedule,
            p.step,
            p.regrid_change,
            p.orig_bytes,
            p.temporal_bytes,
            p.lr_bytes,
            p.spatial_only_bytes,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"stable_temporal_over_lr\": {:.4},\n  \"regrid_temporal_over_spatial_only\": {:.4}\n}}\n",
        stable_t as f64 / stable_lr as f64,
        regrid_t as f64 / regrid_sp as f64
    ));
    let out = std::env::var("AMRIC_BENCH_OUT").unwrap_or_else(|_| "BENCH_temporal.json".into());
    let mut f = std::fs::File::create(&out).expect("create trajectory file");
    f.write_all(json.as_bytes()).expect("write trajectory file");
    println!("wrote {out}");
}
