//! Query-path study: cold vs cached vs parallel ROI reads against a
//! written Nyx_1 plotfile, compared with the full-file decode they
//! replace. Prints the wall-clock table and emits `BENCH_query.json`
//! (cold / cached / parallel series) for the trajectory tracker.
//!
//! Every query result is bitwise-identical to slicing the full decode
//! (the amr-query equivalence suite enforces it); this binary verifies
//! the decoded cell counts agree, then reports only wall-clock
//! differences. On single-core hosts expect cold ≈ cold-parallel; the
//! fan-out win appears with real cores.

use amr_mesh::{IntBox, IntVect};
use amr_query::{LevelSelect, QueryEngine};
use amric::prelude::*;
use amric_bench::{default_workers, print_table, scratch, secs, table1_runs};
use std::io::Write;
use std::time::Instant;

struct Point {
    series: &'static str,
    workers: usize,
    ms_per_iter: f64,
    cells: u64,
}

fn time_iters(iters: usize, mut f: impl FnMut() -> u64) -> (f64, u64) {
    let cells = f(); // warm-up / correctness pass, excluded from timing
    let t0 = Instant::now();
    for _ in 0..iters {
        let c = f();
        assert_eq!(c, cells, "decoded cell count varied across runs");
    }
    (t0.elapsed().as_secs_f64() * 1000.0 / iters as f64, cells)
}

fn main() {
    let spec = table1_runs()
        .into_iter()
        .find(|s| s.name == "Nyx_1")
        .expect("Nyx_1");
    let h = spec.build(0.0);
    let iters: usize = std::env::var("AMRIC_QUERY_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let path = scratch("fig-query");
    write_amric(
        &path,
        &h,
        &AmricConfig::lr(spec.amric_rel_eb),
        spec.blocking_factor,
    )
    .expect("write");

    // Interior ROI covering half the coarse edge — the "pan a subvolume"
    // workload the visualization studies report as dominant.
    let roi = IntBox::new(IntVect::new(8, 8, 8), IntVect::new(23, 23, 23));
    let view_cells = |engine: &QueryEngine| -> u64 {
        let view = engine.roi(0, roi, LevelSelect::All).expect("roi");
        view.levels
            .iter()
            .map(|l| l.region.num_cells())
            .sum::<u64>()
    };

    let mut points = Vec::new();
    // Baseline the query replaces: decode the whole plotfile, slice later.
    let (full_ms, full_cells) = time_iters(iters.clamp(1, 5), || {
        let pf = amric::reader::read_amric_hierarchy(&path).expect("full decode");
        pf.levels.iter().map(|l| l.num_cells()).sum()
    });
    points.push(Point {
        series: "full_decode",
        workers: 1,
        ms_per_iter: full_ms,
        cells: full_cells,
    });
    // Cold: fresh engine (empty cache) per iteration, serial fetch.
    let (cold_ms, roi_cells) = time_iters(iters, || {
        let engine = QueryEngine::open(&path).expect("open");
        view_cells(&engine)
    });
    points.push(Point {
        series: "roi_cold",
        workers: 1,
        ms_per_iter: cold_ms,
        cells: roi_cells,
    });
    // Cached: one engine, repeated query — served from the chunk cache.
    let warm_engine = QueryEngine::open(&path).expect("open");
    let (warm_ms, warm_cells) = time_iters(iters, || view_cells(&warm_engine));
    assert_eq!(warm_cells, roi_cells);
    assert!(
        warm_engine.cache_stats().hits > 0,
        "cached series never hit the cache"
    );
    points.push(Point {
        series: "roi_cached",
        workers: 1,
        ms_per_iter: warm_ms,
        cells: roi_cells,
    });
    // Parallel: cold fetch fanned out over the worker pool.
    let max_workers = default_workers().max(4);
    let mut sweep = vec![2usize, 4];
    if !sweep.contains(&max_workers) {
        sweep.push(max_workers);
    }
    for &w in &sweep {
        let (ms, cells) = time_iters(iters, || {
            let engine = QueryEngine::open(&path).expect("open").with_workers(w);
            view_cells(&engine)
        });
        assert_eq!(cells, roi_cells);
        points.push(Point {
            series: "roi_cold_parallel",
            workers: w,
            ms_per_iter: ms,
            cells,
        });
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.series.to_string(),
                p.workers.to_string(),
                secs(p.ms_per_iter / 1000.0),
                p.cells.to_string(),
                format!("{:.2}x", full_ms / p.ms_per_iter),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Query path (Nyx_1 ROI {roi:?}, {iters} iters/point, {} cores available)",
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        ),
        &[
            "series",
            "workers",
            "s/iter",
            "cells",
            "speedup vs full decode",
        ],
        &rows,
    );

    // Trajectory file: hand-rolled JSON (no serde in-tree).
    let mut json = String::from("{\n  \"bench\": \"query\",\n  \"run\": \"Nyx_1\",\n");
    json.push_str(&format!(
        "  \"cores\": {},\n  \"iters_per_point\": {iters},\n  \"series\": [\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    ));
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"series\": \"{}\", \"workers\": {}, \"ms_per_iter\": {:.3}, \"cells\": {}}}{}\n",
            p.series,
            p.workers,
            p.ms_per_iter,
            p.cells,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    let best_parallel = points
        .iter()
        .filter(|p| p.series == "roi_cold_parallel")
        .map(|p| cold_ms / p.ms_per_iter)
        .fold(f64::NAN, f64::max);
    json.push_str(&format!(
        "  \"speedup_roi_cold_vs_full\": {:.3},\n  \"speedup_cached_vs_cold\": {:.3},\n  \"best_parallel_speedup_vs_cold\": {best_parallel:.3}\n}}\n",
        full_ms / cold_ms,
        cold_ms / warm_ms
    ));
    let out = std::env::var("AMRIC_BENCH_OUT").unwrap_or_else(|_| "BENCH_query.json".into());
    let mut f = std::fs::File::create(&out).expect("create trajectory file");
    f.write_all(json.as_bytes()).expect("write trajectory file");
    println!("\nwrote {out}");
    std::fs::remove_file(&path).ok();
}
