//! Figure 15: pointwise error of AMRIC vs the AMReX baseline on the Nyx_2
//! coarse level ("baryon density"). The paper's slice visualization shows
//! AMReX's error visibly higher; we report per-field RMSE / max error of
//! both solutions at the paper's Table-1 bounds, plus a CSV slice.

use amric::prelude::*;
use amric::reader::{read_amric_hierarchy, read_baseline_hierarchy};
use amric_bench::{amric_lr, print_table, scratch, table1_runs};
use std::io::Write;

fn dump_slice(path: &str, orig: &amr_mesh::MultiFab, recon: &amr_mesh::MultiFab, field: usize) {
    // Mid-plane |error| over the first box.
    let (bi, fab) = orig.iter().next().expect("non-empty level");
    let d = fab.domain().size();
    let k = fab.domain().lo.get(2) + d.get(2) / 2;
    let mut f = std::fs::File::create(path).expect("slice file");
    for j in fab.domain().lo.get(1)..=fab.domain().hi.get(1) {
        let row: Vec<String> = (fab.domain().lo.get(0)..=fab.domain().hi.get(0))
            .map(|i| {
                let p = amr_mesh::IntVect::new(i, j, k);
                let e = (fab.get(&p, field) - recon.fab(bi).get(&p, field)).abs();
                format!("{e:.6e}")
            })
            .collect();
        writeln!(f, "{}", row.join(",")).expect("write row");
    }
    eprintln!("[fig15] wrote error slice to {path}");
}

fn main() {
    let spec = table1_runs()
        .into_iter()
        .find(|s| s.name == "Nyx_2")
        .expect("Nyx_2 spec");
    let h = spec.build(0.0);
    let field = 0; // baryon density
    let mut rows = Vec::new();

    // AMReX baseline at its Table-1 bound.
    {
        let path = scratch("fig15-amrex");
        write_amrex_baseline(&path, &h, &BaselineConfig::new(spec.amrex_rel_eb)).unwrap();
        let pf = read_baseline_hierarchy(&path).unwrap();
        let checks = verify_against(&pf, &h, spec.amrex_rel_eb);
        let s = &checks[field].stats;
        rows.push(vec![
            format!("AMReX(1D) @ {:.0e}", spec.amrex_rel_eb),
            format!("{:.3e}", s.mse.sqrt()),
            format!("{:.3e}", s.max_abs_err),
            format!("{:.2}", s.psnr()),
        ]);
        dump_slice(
            "/tmp/amric-fig15-amrex.csv",
            &h.level(0).data,
            &pf.levels[0],
            field,
        );
        std::fs::remove_file(&path).ok();
    }
    // AMRIC at its (tighter) bound.
    {
        let path = scratch("fig15-amric");
        write_amric(
            &path,
            &h,
            &amric_lr(spec.amric_rel_eb),
            spec.blocking_factor,
        )
        .unwrap();
        let pf = read_amric_hierarchy(&path).unwrap();
        let checks = verify_against(&pf, &h, spec.amric_rel_eb);
        let s = &checks[field].stats;
        rows.push(vec![
            format!("AMRIC(SZ_L/R) @ {:.0e}", spec.amric_rel_eb),
            format!("{:.3e}", s.mse.sqrt()),
            format!("{:.3e}", s.max_abs_err),
            format!("{:.2}", s.psnr()),
        ]);
        dump_slice(
            "/tmp/amric-fig15-amric.csv",
            &h.level(0).data,
            &pf.levels[0],
            field,
        );
        std::fs::remove_file(&path).ok();
    }
    print_table(
        "Figure 15: Nyx_2 'baryon density' reconstruction error",
        &["Solution", "RMSE", "max |err|", "PSNR"],
        &rows,
    );
    println!(
        "\nExpected shape (paper Fig. 15): AMRIC's error is considerably lower than\nAMReX's across the slice, even though AMReX runs at a looser bound."
    );
}
