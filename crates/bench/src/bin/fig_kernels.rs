//! Kernel microbenchmarks: before/after series for the data-parallel
//! sz-codec hot-kernel rework. "Before" runs the `*_reference` twins —
//! the original scalar/bit-serial code kept in-tree as equivalence
//! oracles — and "after" runs the shipped kernels. Both sides produce
//! identical results (asserted here per pair and enforced globally by
//! the golden-stream suite), so the series measure the same work.
//!
//! Emits `BENCH_kernels.json` with a `cores` field so single-core CI
//! numbers are labelled as such.

use std::io::Write as _;
use std::time::Instant;
use sz_codec::buffer3::{Buffer3, Dims3};
use sz_codec::huffman::{self, HuffmanCode};
use sz_codec::kernels;
use sz_codec::quantizer::Quantizer;
use sz_codec::wire::Writer;

struct Point {
    kernel: &'static str,
    variant: &'static str,
    ms_per_iter: f64,
    mitems_per_s: f64,
}

fn time_iters(iters: usize, mut f: impl FnMut() -> u64) -> f64 {
    let check = f(); // warm-up, excluded from timing
    let t0 = Instant::now();
    for _ in 0..iters {
        assert_eq!(f(), check, "non-deterministic kernel result");
    }
    t0.elapsed().as_secs_f64() * 1000.0 / iters as f64
}

fn push_pair(
    series: &mut Vec<Point>,
    kernel: &'static str,
    iters: usize,
    items: usize,
    mut before: impl FnMut() -> u64,
    mut after: impl FnMut() -> u64,
) {
    assert_eq!(before(), after(), "{kernel}: before/after disagree");
    for (variant, ms) in [
        ("before", time_iters(iters, &mut before)),
        ("after", time_iters(iters, &mut after)),
    ] {
        series.push(Point {
            kernel,
            variant,
            ms_per_iter: ms,
            mitems_per_s: items as f64 / (ms * 1e-3) / 1e6,
        });
    }
}

fn smooth_field(n: usize) -> Buffer3 {
    let mut x = 7u64;
    let mut b = Buffer3::zeros(Dims3::cube(n));
    b.fill_with(|i, j, k| {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let noise = (x >> 11) as f64 / (1u64 << 53) as f64;
        (i as f64 * 0.21).sin() + (j as f64 * 0.17).cos() + 0.05 * k as f64 + 0.01 * noise
    });
    b
}

/// Quantization-symbol stream shaped like a real SZ residual stream:
/// tightly clustered around the zero symbol with occasional excursions.
fn quant_symbols(n: usize) -> Vec<u32> {
    let mut x = 99u64;
    (0..n)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = (x >> 33) as u32;
            let spread = if r.is_multiple_of(97) { 256 } else { 17 };
            32768 - spread / 2 + r % spread
        })
        .collect()
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let iters: usize = std::env::var("AMRIC_KERNEL_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12);
    let mut series: Vec<Point> = Vec::new();

    // --- predict: cubic-spline rows (the interp Y/Z pass inner loop).
    // Before: the per-point indexed-get formulation the compressor used
    // to run. After: the contiguous row kernel over neighbour slices.
    {
        let n = 64;
        let recon = smooth_field(n);
        let dims = recon.dims();
        let ys: Vec<usize> = (3..n - 3).collect(); // cubic-eligible rows
        let items = ys.len() * n * n;
        let before = {
            let (recon, ys) = (&recon, &ys);
            let mut preds = vec![0.0f64; n];
            move || {
                let mut acc = 0u64;
                for z in 0..dims.nz {
                    for &y in ys {
                        for (x, p) in preds.iter_mut().enumerate() {
                            let at = |pos: usize| recon.get(x, pos, z);
                            *p =
                                (-at(y - 3) + 9.0 * at(y - 1) + 9.0 * at(y + 1) - at(y + 3)) / 16.0;
                        }
                        acc = acc.wrapping_add(preds[dims.nx - 1].to_bits());
                    }
                }
                acc
            }
        };
        let after = {
            let (recon, ys) = (&recon, &ys);
            let mut preds = vec![0.0f64; n];
            move || {
                let flat = recon.data();
                let mut acc = 0u64;
                for z in 0..dims.nz {
                    for &y in ys {
                        let base = dims.idx(0, y, z);
                        let rm3 = &flat[base - 3 * dims.nx..base - 2 * dims.nx];
                        let rm1 = &flat[base - dims.nx..base];
                        let rp1 = &flat[base + dims.nx..base + 2 * dims.nx];
                        let rp3 = &flat[base + 3 * dims.nx..base + 4 * dims.nx];
                        kernels::predict_cubic_row(rm3, rm1, rp1, rp3, &mut preds);
                        acc = acc.wrapping_add(preds[dims.nx - 1].to_bits());
                    }
                }
                acc
            }
        };
        push_pair(&mut series, "predict_cubic", iters, items, before, after);
    }

    // --- quantize: the regression-family encode loop. Before: the
    // original per-point formulation — indexed buffer access, the full
    // affine prediction recomputed at every cell, the branchy quantizer.
    // After: per-row hoisting of the y/z terms plus the fused
    // predict+quantize lane kernel. Same expression tree, so the symbol
    // and reconstruction streams are asserted identical.
    {
        let n = 64;
        let field = smooth_field(n);
        let dims = field.dims();
        let items = n * n * n;
        let (b0, bx, by, bz) = (0.1f64, 0.003f64, 0.002f64, 0.001f64);
        let q = Quantizer::new(1e-3);
        let before = {
            let (field, q) = (&field, &q);
            let mut syms = vec![0u32; items];
            let mut recon = vec![0.0f64; items];
            move || {
                let mut acc = 0u64;
                for z in 0..dims.nz {
                    for y in 0..dims.ny {
                        for x in 0..dims.nx {
                            let idx = dims.idx(x, y, z);
                            let pred = ((b0 + bx * x as f64) + by * y as f64) + bz * z as f64;
                            let (sym, rec) = q.quantize(field.get(x, y, z), pred);
                            syms[idx] = sym;
                            recon[idx] = rec;
                        }
                        acc = acc
                            .wrapping_add(syms[dims.idx(0, y, z)] as u64)
                            .wrapping_add(recon[dims.idx(dims.nx - 1, y, z)].to_bits());
                    }
                }
                acc
            }
        };
        let after = {
            let (field, q) = (&field, &q);
            let mut syms = vec![0u32; items];
            let mut recon = vec![0.0f64; items];
            move || {
                let flat = field.data();
                let mut acc = 0u64;
                for z in 0..dims.nz {
                    let hz = bz * z as f64;
                    for y in 0..dims.ny {
                        let hy = by * y as f64;
                        let base = dims.idx(0, y, z);
                        let s = &mut syms[base..base + dims.nx];
                        let r = &mut recon[base..base + dims.nx];
                        kernels::quantize_affine_row(
                            q,
                            &flat[base..base + dims.nx],
                            b0,
                            bx,
                            hy,
                            hz,
                            s,
                            r,
                        );
                        acc = acc
                            .wrapping_add(s[0] as u64)
                            .wrapping_add(r[dims.nx - 1].to_bits());
                    }
                }
                acc
            }
        };
        push_pair(&mut series, "quantize", iters, items, before, after);
    }

    // --- huffman encode (per-bit writer vs 64-bit accumulator), decode
    // (bit-by-bit canonical walk vs table-driven), and the fused entropy
    // emission the container writer runs.
    {
        let n = 1 << 20;
        let syms = quant_symbols(n);
        let freqs = huffman::count_frequencies(&syms);
        let code = HuffmanCode::from_frequencies(&freqs);
        let bytes = code.encode(&syms);
        assert_eq!(code.encode_reference(&syms), bytes);
        push_pair(
            &mut series,
            "huffman_encode",
            iters,
            n,
            || {
                let b = code.encode_reference(&syms);
                (b.len() as u64).wrapping_add(b[b.len() - 1] as u64)
            },
            || {
                let b = code.encode(&syms);
                (b.len() as u64).wrapping_add(b[b.len() - 1] as u64)
            },
        );
        push_pair(
            &mut series,
            "huffman_decode",
            iters,
            n,
            || {
                let s = code.decode_reference(&bytes, n).expect("decode");
                s[s.len() - 1] as u64 + s.len() as u64
            },
            || {
                let s = code.decode(&bytes, n).expect("decode");
                s[s.len() - 1] as u64 + s.len() as u64
            },
        );

        // Fused pass — before: HashMap count, per-bit encode, and an
        // intermediate buffer copied through put_block; after: histogram
        // carried in (rebuilt densely here, as quantization maintains it
        // in-line in the real pipeline) and direct block emission.
        push_pair(
            &mut series,
            "fused_pass",
            iters,
            n,
            || {
                let mut w = Writer::new();
                w.put_block(&huffman::encode_with_table_reference(&syms));
                let b = w.into_bytes();
                (b.len() as u64).wrapping_add(b[b.len() - 1] as u64)
            },
            || {
                let freqs = huffman::count_frequencies(&syms);
                let mut w = Writer::new();
                huffman::encode_block_with_histogram_into(&syms, &freqs, &mut w);
                let b = w.into_bytes();
                (b.len() as u64).wrapping_add(b[b.len() - 1] as u64)
            },
        );
    }

    println!(
        "{:<16} {:>8} {:>12} {:>12}",
        "kernel", "variant", "ms/iter", "Mitems/s"
    );
    for p in &series {
        println!(
            "{:<16} {:>8} {:>12.3} {:>12.1}",
            p.kernel, p.variant, p.ms_per_iter, p.mitems_per_s
        );
    }

    let kernels_list = [
        "predict_cubic",
        "quantize",
        "huffman_encode",
        "huffman_decode",
        "fused_pass",
    ];
    let ms_of = |kernel: &str, variant: &str| {
        series
            .iter()
            .find(|p| p.kernel == kernel && p.variant == variant)
            .map(|p| p.ms_per_iter)
            .unwrap_or(f64::NAN)
    };

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"kernels\",\n");
    json.push_str(&format!("  \"cores\": {cores},\n"));
    json.push_str(&format!("  \"iters_per_point\": {iters},\n"));
    json.push_str("  \"series\": [\n");
    for (i, p) in series.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"variant\": \"{}\", \"ms_per_iter\": {:.3}, \"mitems_per_s\": {:.1}}}{}\n",
            p.kernel,
            p.variant,
            p.ms_per_iter,
            p.mitems_per_s,
            if i + 1 == series.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"speedups\": {");
    for (i, k) in kernels_list.iter().enumerate() {
        json.push_str(&format!(
            "\"{}\": {:.3}{}",
            k,
            ms_of(k, "before") / ms_of(k, "after"),
            if i + 1 == kernels_list.len() {
                ""
            } else {
                ", "
            }
        ));
    }
    json.push_str("}\n}\n");

    let mut f = std::fs::File::create("BENCH_kernels.json").expect("create BENCH_kernels.json");
    f.write_all(json.as_bytes()).expect("write json");
    println!("\nwrote BENCH_kernels.json (cores = {cores})");
    for k in ["predict_cubic", "quantize", "huffman_decode"] {
        println!(
            "  speedup {k}: {:.2}x",
            ms_of(k, "before") / ms_of(k, "after")
        );
    }
}
