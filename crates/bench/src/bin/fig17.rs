//! Figure 17: WarpX write-time breakdown (prep + I/O-with-compression)
//! across the three weak-scaling runs, for NoComp / AMReX / AMRIC(SZ_L/R)
//! / AMRIC(SZ_Interp). Compression compute is measured; storage costs use
//! the PFS model (see rankpar::pfs and README.md).

use amric_bench::{evaluate_run, paper_volume_factor, print_table, secs, table1_runs, App};
use rankpar::PfsParams;

fn main() {
    let params = PfsParams::default();
    let mut rows = Vec::new();
    for spec in table1_runs().into_iter().filter(|s| s.app == App::WarpX) {
        let results = evaluate_run(&spec, &params);
        let factor = paper_volume_factor(&spec);
        for r in &results {
            let projected = r.projected_io_seconds(factor, &params, spec.paper_ranks);
            rows.push(vec![
                format!("{} ({} ranks)", spec.name, spec.paper_ranks),
                r.method.clone(),
                secs(r.prep_s),
                secs(r.io_s),
                secs(r.prep_s + r.io_s),
                secs(projected),
                r.filter_calls.to_string(),
            ]);
        }
        eprintln!("[fig17] {} done", spec.name);
    }
    print_table(
        "Figure 17: WarpX write-time breakdown (modeled seconds, slowest rank)",
        &[
            "Run",
            "Method",
            "Prep",
            "I/O(+comp)",
            "Total",
            "paper-scale I/O",
            "filter calls",
        ],
        &rows,
    );
    println!(
        "\nRead the paper-scale I/O column against the paper's figure: it projects\neach rank's measured ledger to the paper's per-rank data volume (see\nMethodResult::projected_io_seconds). Expected shape: AMReX slowest by far\n(per-chunk compressor launches), AMRIC ~= NoComp at the small scale and\nincreasingly ahead at larger scales; prep negligible throughout."
    );
}
