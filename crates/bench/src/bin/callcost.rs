//! §4.4 launch-cost ablation: the paper attributes AMReX's slow writes to
//! compressor-call count × constant startup cost ((2048−128)·0.03 ≈ 55 s).
//! This harness counts the calls each method makes on each run and prices
//! them under the PFS model, isolating the launch term from bandwidth.

use amric_bench::{evaluate_run, print_table, secs, table1_runs};
use rankpar::PfsParams;

fn main() {
    let params = PfsParams::default();
    let mut rows = Vec::new();
    for spec in table1_runs() {
        let results = evaluate_run(&spec, &params);
        for r in &results {
            let max_rank_calls = r.filter_calls.div_ceil(spec.nranks as u64);
            let launch_s = max_rank_calls as f64 * params.compressor_launch_s;
            rows.push(vec![
                spec.name.to_string(),
                r.method.clone(),
                r.filter_calls.to_string(),
                max_rank_calls.to_string(),
                secs(launch_s),
                secs(r.io_s),
                format!("{:.0}%", 100.0 * launch_s / r.io_s.max(f64::MIN_POSITIVE)),
            ]);
        }
        eprintln!("[callcost] {} done", spec.name);
    }
    print_table(
        "Compressor-launch cost ablation (§4.4 analysis)",
        &[
            "Run",
            "Method",
            "calls(total)",
            "calls/rank",
            "launch s",
            "io s",
            "launch share",
        ],
        &rows,
    );
    println!(
        "\nExpected shape (paper §4.4): AMReX's launch term dominates its I/O time\n(one call per 1024-element chunk); AMRIC makes one call per (rank, level,\nfield) so its launch share is negligible."
    );
}
