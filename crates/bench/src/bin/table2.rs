//! Table 2: compression ratio of AMReX(1D) vs AMRIC(SZ_L/R) vs
//! AMRIC(SZ_Interp), averaged across all fields, per run.

use amric_bench::{evaluate_run, f1, print_table, table1_runs};
use rankpar::PfsParams;

fn main() {
    let params = PfsParams::default();
    let mut rows = Vec::new();
    for spec in table1_runs() {
        let results = evaluate_run(&spec, &params);
        let get = |m: &str| {
            results
                .iter()
                .find(|r| r.method == m)
                .map(|r| f1(r.compression_ratio))
                .unwrap_or_else(|| "-".into())
        };
        rows.push(vec![
            spec.name.to_string(),
            get("AMReX(1D)"),
            get("AMRIC(SZ_L/R)"),
            get("AMRIC(SZ_Interp)"),
        ]);
        eprintln!("[table2] {} done", spec.name);
    }
    print_table(
        "Table 2: compression ratio (orig bytes / stored bytes)",
        &["Run", "AMReX(1D)", "AMRIC(SZ_L/R)", "AMRIC(SZ_Interp)"],
        &rows,
    );
    println!(
        "\nExpected shape (paper): AMRIC ≫ AMReX on every run; WarpX ratios in the\nhundreds+, Nyx modest; SZ_Interp strongest on WarpX, SZ_L/R competitive on Nyx."
    );
}
