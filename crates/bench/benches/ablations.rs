//! Criterion ablations over AMRIC's design choices (§3): SLE vs LM vs
//! per-unit calls, adaptive vs fixed block size, cluster vs linear
//! arrangement, chunk-size sweep for the 1-D baseline.

use amric::config::{AmricConfig, MergePolicy};
use amric::pipeline::compress_field_units;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sz_codec::prelude::*;

/// Unit blocks with per-unit base offsets (spatially discontiguous).
fn units(n: usize, edge: usize) -> Vec<Buffer3> {
    (0..n)
        .map(|u| {
            let mut b = Buffer3::zeros(Dims3::cube(edge));
            let base = (u as f64 * 1.37).sin() * 40.0;
            b.fill_with(|i, j, k| {
                base + ((i as f64 * 0.4).sin() + (j as f64 * 0.3).cos()) * (1.0 + k as f64 * 0.02)
            });
            b
        })
        .collect()
}

fn bench_merge_policies(c: &mut Criterion) {
    let u = units(64, 8);
    let bytes: u64 = u.iter().map(|b| b.dims().len() as u64 * 8).sum();
    let mut g = c.benchmark_group("ablation/merge_policy");
    g.throughput(Throughput::Bytes(bytes));
    for (name, merge) in [
        ("sle", MergePolicy::SharedEncoding),
        ("linear_merge", MergePolicy::LinearMerge),
    ] {
        let cfg = AmricConfig::lr(1e-3)
            .with_merge(merge)
            .with_adaptive_block_size(false);
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| compress_field_units(&u, &cfg, 8))
        });
    }
    // Per-unit separate compression (the strawman SLE replaces).
    g.bench_function(BenchmarkId::from_parameter("per_unit_calls"), |b| {
        b.iter(|| {
            let abs = amric::pipeline::resolve_abs_eb(&u, 1e-3);
            u.iter()
                .map(|unit| lr::compress(unit, &LrConfig::new(abs)).len())
                .sum::<usize>()
        })
    });
    g.finish();
}

fn bench_block_size(c: &mut Criterion) {
    let u = units(64, 8);
    let bytes: u64 = u.iter().map(|b| b.dims().len() as u64 * 8).sum();
    let mut g = c.benchmark_group("ablation/sz_block_size");
    g.throughput(Throughput::Bytes(bytes));
    for (name, adaptive) in [("eq1_adaptive", true), ("fixed_6", false)] {
        let cfg = AmricConfig::lr(1e-3).with_adaptive_block_size(adaptive);
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| compress_field_units(&u, &cfg, 8))
        });
    }
    g.finish();
}

fn bench_arrangement(c: &mut Criterion) {
    let u = units(27, 8);
    let bytes: u64 = u.iter().map(|b| b.dims().len() as u64 * 8).sum();
    let mut g = c.benchmark_group("ablation/interp_arrangement");
    g.throughput(Throughput::Bytes(bytes));
    for (name, cluster) in [("cluster", true), ("linear", false)] {
        let cfg = AmricConfig::interp(1e-3).with_cluster_arrangement(cluster);
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| compress_field_units(&u, &cfg, 8))
        });
    }
    g.finish();
}

fn bench_chunk_size(c: &mut Criterion) {
    // The §2.1 trade-off: per-chunk 1-D SZ calls at different chunk sizes.
    let flat: Vec<f64> = (0..1 << 16)
        .map(|i| ((i as f64) * 0.003).sin() * 5.0 + (i % 97) as f64 * 0.01)
        .collect();
    let mut g = c.benchmark_group("ablation/chunk_size");
    g.throughput(Throughput::Bytes((flat.len() * 8) as u64));
    for chunk in [512usize, 1024, 4096, 16384, 65536] {
        g.bench_function(BenchmarkId::from_parameter(chunk), |b| {
            b.iter(|| {
                flat.chunks(chunk)
                    .map(|ck| lr::compress_1d(ck, 1e-3).len())
                    .sum::<usize>()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_merge_policies, bench_block_size, bench_arrangement, bench_chunk_size
}
criterion_main!(benches);
