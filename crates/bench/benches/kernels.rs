//! Criterion benches for the sz-codec hot kernels: the shipped lane
//! kernels against their `*_reference` twins (the original scalar and
//! bit-serial forms kept in-tree as equivalence oracles). The
//! `fig_kernels` bin target runs the same pairs as a fixed-iteration
//! before/after sweep and emits `BENCH_kernels.json`; this target is the
//! statistically careful interactive view of the same kernels.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sz_codec::buffer3::{Buffer3, Dims3};
use sz_codec::huffman::{self, HuffmanCode};
use sz_codec::kernels;
use sz_codec::quantizer::Quantizer;

fn smooth_field(n: usize) -> Buffer3 {
    let mut x = 7u64;
    let mut b = Buffer3::zeros(Dims3::cube(n));
    b.fill_with(|i, j, k| {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let noise = (x >> 11) as f64 / (1u64 << 53) as f64;
        (i as f64 * 0.21).sin() + (j as f64 * 0.17).cos() + 0.05 * k as f64 + 0.01 * noise
    });
    b
}

fn quant_symbols(n: usize) -> Vec<u32> {
    let mut x = 99u64;
    (0..n)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = (x >> 33) as u32;
            let spread = if r.is_multiple_of(97) { 256 } else { 17 };
            32768 - spread / 2 + r % spread
        })
        .collect()
}

fn bench_quantize(c: &mut Criterion) {
    let n = 64;
    let field = smooth_field(n);
    let dims = field.dims();
    let q = Quantizer::new(1e-3);
    let (b0, bx, by, bz) = (0.1f64, 0.003f64, 0.002f64, 0.001f64);
    let mut syms = vec![0u32; n * n * n];
    let mut recon = vec![0.0f64; n * n * n];
    let mut g = c.benchmark_group("kernels/quantize");
    g.throughput(Throughput::Elements((n * n * n) as u64));
    g.bench_function("per_point_reference", |b| {
        b.iter(|| {
            for z in 0..dims.nz {
                for y in 0..dims.ny {
                    for x in 0..dims.nx {
                        let idx = dims.idx(x, y, z);
                        let pred = ((b0 + bx * x as f64) + by * y as f64) + bz * z as f64;
                        let (sym, rec) = q.quantize(field.get(x, y, z), pred);
                        syms[idx] = sym;
                        recon[idx] = rec;
                    }
                }
            }
            syms[0]
        })
    });
    g.bench_function("affine_row", |b| {
        b.iter(|| {
            let flat = field.data();
            for z in 0..dims.nz {
                let hz = bz * z as f64;
                for y in 0..dims.ny {
                    let hy = by * y as f64;
                    let base = dims.idx(0, y, z);
                    kernels::quantize_affine_row(
                        &q,
                        &flat[base..base + dims.nx],
                        b0,
                        bx,
                        hy,
                        hz,
                        &mut syms[base..base + dims.nx],
                        &mut recon[base..base + dims.nx],
                    );
                }
            }
            syms[0]
        })
    });
    g.finish();
}

fn bench_predict(c: &mut Criterion) {
    let n = 64;
    let recon = smooth_field(n);
    let dims = recon.dims();
    let ys: Vec<usize> = (3..n - 3).collect();
    let mut preds = vec![0.0f64; n];
    let mut g = c.benchmark_group("kernels/predict_cubic");
    g.throughput(Throughput::Elements((ys.len() * n * n) as u64));
    g.bench_function("per_point_reference", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for z in 0..dims.nz {
                for &y in &ys {
                    for (x, p) in preds.iter_mut().enumerate() {
                        let at = |pos: usize| recon.get(x, pos, z);
                        *p = (-at(y - 3) + 9.0 * at(y - 1) + 9.0 * at(y + 1) - at(y + 3)) / 16.0;
                    }
                    acc = acc.wrapping_add(preds[dims.nx - 1].to_bits());
                }
            }
            acc
        })
    });
    g.bench_function("row", |b| {
        b.iter(|| {
            let flat = recon.data();
            let mut acc = 0u64;
            for z in 0..dims.nz {
                for &y in &ys {
                    let base = dims.idx(0, y, z);
                    let rm3 = &flat[base - 3 * dims.nx..base - 2 * dims.nx];
                    let rm1 = &flat[base - dims.nx..base];
                    let rp1 = &flat[base + dims.nx..base + 2 * dims.nx];
                    let rp3 = &flat[base + 3 * dims.nx..base + 4 * dims.nx];
                    kernels::predict_cubic_row(rm3, rm1, rp1, rp3, &mut preds);
                    acc = acc.wrapping_add(preds[dims.nx - 1].to_bits());
                }
            }
            acc
        })
    });
    g.finish();
}

fn bench_huffman(c: &mut Criterion) {
    let n = 1 << 18;
    let syms = quant_symbols(n);
    let freqs = huffman::count_frequencies(&syms);
    let code = HuffmanCode::from_frequencies(&freqs);
    let bytes = code.encode(&syms);
    let mut g = c.benchmark_group("kernels/huffman");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("encode_reference", |b| {
        b.iter(|| code.encode_reference(&syms))
    });
    g.bench_function("encode", |b| b.iter(|| code.encode(&syms)));
    g.bench_function("decode_reference", |b| {
        b.iter(|| code.decode_reference(&bytes, n).unwrap())
    });
    g.bench_function("decode", |b| b.iter(|| code.decode(&bytes, n).unwrap()));
    g.finish();
}

criterion_group!(benches, bench_quantize, bench_predict, bench_huffman);
criterion_main!(benches);
