//! Criterion benches: raw compressor throughput (SZ_L/R, SZ_Interp, 1-D)
//! on Nyx-like and WarpX-like data — the compute side of the paper's I/O
//! breakdown.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sz_codec::prelude::*;

fn nyx_like(n: usize) -> Buffer3 {
    let mut x = 42u64;
    let mut b = Buffer3::zeros(Dims3::cube(n));
    b.fill_with(|i, j, k| {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let noise = (x >> 11) as f64 / (1u64 << 53) as f64;
        (1.0 + 0.5 * ((i as f64 * 0.21).sin() + (j as f64 * 0.17).cos() + (k as f64 * 0.13).sin())
            + 0.2 * noise)
            .exp()
    });
    b
}

fn warpx_like(n: usize) -> Buffer3 {
    let mut b = Buffer3::zeros(Dims3::cube(n));
    b.fill_with(|i, j, k| {
        let z = k as f64 / n as f64;
        let env = (-(z - 0.5) * (z - 0.5) / 0.02).exp();
        env * (40.0 * z).sin() * (1.0 + 0.01 * ((i + j) as f64 * 0.1).sin())
    });
    b
}

fn bench_compress(c: &mut Criterion) {
    let n = 48;
    let bytes = (n * n * n * 8) as u64;
    for (data_name, data) in [("nyx", nyx_like(n)), ("warpx", warpx_like(n))] {
        let eb = absolute_bound(1e-3, data.value_range());
        let mut g = c.benchmark_group(format!("compress/{data_name}"));
        g.throughput(Throughput::Bytes(bytes));
        g.bench_function(BenchmarkId::from_parameter("sz_lr_3d"), |b| {
            b.iter(|| lr::compress(&data, &LrConfig::new(eb)))
        });
        g.bench_function(BenchmarkId::from_parameter("sz_interp"), |b| {
            b.iter(|| interp::compress(&data, &InterpConfig::new(eb)))
        });
        g.bench_function(BenchmarkId::from_parameter("sz_lr_1d"), |b| {
            b.iter(|| lr::compress_1d(data.data(), eb))
        });
        g.finish();
    }
}

fn bench_decompress(c: &mut Criterion) {
    let n = 48;
    let data = nyx_like(n);
    let eb = absolute_bound(1e-3, data.value_range());
    let lr_stream = lr::compress(&data, &LrConfig::new(eb));
    let in_stream = interp::compress(&data, &InterpConfig::new(eb));
    let mut g = c.benchmark_group("decompress/nyx");
    g.throughput(Throughput::Bytes((n * n * n * 8) as u64));
    g.bench_function("sz_lr_3d", |b| {
        b.iter(|| lr::decompress(&lr_stream).unwrap())
    });
    g.bench_function("sz_interp", |b| {
        b.iter(|| interp::decompress(&in_stream).unwrap())
    });
    g.finish();
}

fn bench_lossless(c: &mut Criterion) {
    // The LZ backend on structured bytes (what the Huffman stage emits).
    let data: Vec<u8> = (0..1 << 18).map(|i: u32| ((i / 64) % 251) as u8).collect();
    let mut g = c.benchmark_group("lossless");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("lz_compress", |b| {
        b.iter(|| sz_codec::lossless::compress(&data))
    });
    let compressed = sz_codec::lossless::compress(&data);
    g.bench_function("lz_decompress", |b| {
        b.iter(|| sz_codec::lossless::decompress(&compressed).unwrap())
    });
    g.finish();
}

fn bench_huffman(c: &mut Criterion) {
    // Quantization-code-like symbol stream (center-heavy).
    let syms: Vec<u32> = (0..1 << 16)
        .map(|i: u32| 32768 + if i.is_multiple_of(13) { i % 7 } else { 0 })
        .collect();
    let mut g = c.benchmark_group("huffman");
    g.throughput(Throughput::Elements(syms.len() as u64));
    g.bench_function("encode", |b| {
        b.iter(|| sz_codec::huffman::encode_with_table(&syms))
    });
    let enc = sz_codec::huffman::encode_with_table(&syms);
    g.bench_function("decode", |b| {
        b.iter(|| sz_codec::huffman::decode_with_table(&enc).unwrap())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_compress, bench_decompress, bench_lossless, bench_huffman
}
criterion_main!(benches);
