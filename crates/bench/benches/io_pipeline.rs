//! Criterion benches of the end-to-end in-situ write path (preprocess +
//! compress + collective write to a local file) for the three solutions,
//! one per paper table row style (small Nyx run).

use amric::prelude::*;
use amric_bench::{default_workers, scratch, table1_runs};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_writers(c: &mut Criterion) {
    let spec = table1_runs()
        .into_iter()
        .find(|s| s.name == "Nyx_1")
        .expect("Nyx_1");
    let h = spec.build(0.0);
    let bytes = h.snapshot_bytes();
    let mut g = c.benchmark_group("io_pipeline/nyx1");
    g.throughput(Throughput::Bytes(bytes));
    g.sample_size(10);
    g.bench_function("nocomp", |b| {
        b.iter(|| {
            let path = scratch("bench-nocomp");
            write_nocomp(&path, &h).unwrap();
            std::fs::remove_file(&path).ok();
        })
    });
    g.bench_function("amrex_baseline", |b| {
        b.iter(|| {
            let path = scratch("bench-amrex");
            write_amrex_baseline(&path, &h, &BaselineConfig::new(spec.amrex_rel_eb)).unwrap();
            std::fs::remove_file(&path).ok();
        })
    });
    g.bench_function("amric_lr", |b| {
        b.iter(|| {
            let path = scratch("bench-amric-lr");
            write_amric(
                &path,
                &h,
                &AmricConfig::lr(spec.amric_rel_eb),
                spec.blocking_factor,
            )
            .unwrap();
            std::fs::remove_file(&path).ok();
        })
    });
    g.bench_function("amric_interp", |b| {
        b.iter(|| {
            let path = scratch("bench-amric-interp");
            write_amric(
                &path,
                &h,
                &AmricConfig::interp(spec.amric_rel_eb),
                spec.blocking_factor,
            )
            .unwrap();
            std::fs::remove_file(&path).ok();
        })
    });
    // Parallel axis: the overlapped write path on the harness-default
    // worker count (≥ 2 so the pool engages even on small CI runners).
    // Byte-identical output, different wall-clock — the overlap win.
    let workers = default_workers().max(2);
    g.bench_function("amric_lr_parallel", |b| {
        b.iter(|| {
            let path = scratch("bench-amric-lr-par");
            write_amric(
                &path,
                &h,
                &AmricConfig::lr(spec.amric_rel_eb).with_workers(workers),
                spec.blocking_factor,
            )
            .unwrap();
            std::fs::remove_file(&path).ok();
        })
    });
    g.bench_function("amric_interp_parallel", |b| {
        b.iter(|| {
            let path = scratch("bench-amric-interp-par");
            write_amric(
                &path,
                &h,
                &AmricConfig::interp(spec.amric_rel_eb).with_workers(workers),
                spec.blocking_factor,
            )
            .unwrap();
            std::fs::remove_file(&path).ok();
        })
    });
    // Storage axis: the same write landing on the sharded backend (4
    // shard files + manifest). Logical content is byte-identical to the
    // single-file rows (the storage equivalence suite enforces it).
    g.bench_function("sharded_write", |b| {
        b.iter(|| {
            let path = scratch("bench-amric-sharded");
            write_amric_sharded(
                &path,
                4,
                &h,
                &AmricConfig::lr(spec.amric_rel_eb),
                spec.blocking_factor,
            )
            .unwrap();
            std::fs::remove_dir_all(&path).ok();
        })
    });
    g.finish();
}

fn bench_read_roi(c: &mut Criterion) {
    // Read side of the pipeline: ROI queries against a written plotfile —
    // cold (fresh engine, empty cache), warm (cache hit), and a parallel
    // cold fetch. Results are bitwise-identical across all three (the
    // amr-query equivalence suite enforces it); only wall-clock differs.
    let spec = table1_runs()
        .into_iter()
        .find(|s| s.name == "Nyx_1")
        .expect("Nyx_1");
    let h = spec.build(0.0);
    let path = scratch("bench-read-roi");
    write_amric(
        &path,
        &h,
        &AmricConfig::lr(spec.amric_rel_eb),
        spec.blocking_factor,
    )
    .unwrap();
    // Half-edge cube in the interior of Nyx_1's 32³ coarse domain.
    let roi = amr_query::Box3::new(
        amr_mesh::IntVect::new(8, 8, 8),
        amr_mesh::IntVect::new(23, 23, 23),
    );
    let mut g = c.benchmark_group("io_pipeline/read_roi");
    g.sample_size(10);
    g.bench_function("cold", |b| {
        b.iter(|| {
            let engine = amr_query::QueryEngine::open(&path).unwrap();
            engine.roi(0, roi, amr_query::LevelSelect::All).unwrap()
        })
    });
    let warm_engine = amr_query::QueryEngine::open(&path).unwrap();
    warm_engine
        .roi(0, roi, amr_query::LevelSelect::All)
        .unwrap();
    g.bench_function("warm", |b| {
        b.iter(|| {
            warm_engine
                .roi(0, roi, amr_query::LevelSelect::All)
                .unwrap()
        })
    });
    let workers = default_workers().max(2);
    g.bench_function("cold_parallel", |b| {
        b.iter(|| {
            let engine = amr_query::QueryEngine::open(&path)
                .unwrap()
                .with_workers(workers);
            engine.roi(0, roi, amr_query::LevelSelect::All).unwrap()
        })
    });
    // Same ROI against the sharded backend: cold fetch resolves chunk
    // ranges through the manifest and lands on independent shard fds.
    let spath = scratch("bench-read-roi-sharded");
    write_amric_sharded(
        &spath,
        4,
        &h,
        &AmricConfig::lr(spec.amric_rel_eb),
        spec.blocking_factor,
    )
    .unwrap();
    g.bench_function("sharded_roi", |b| {
        b.iter(|| {
            let engine = amr_query::QueryEngine::open(&spath).unwrap();
            engine.roi(0, roi, amr_query::LevelSelect::All).unwrap()
        })
    });
    g.bench_function("sharded_roi_parallel", |b| {
        b.iter(|| {
            let engine = amr_query::QueryEngine::open(&spath)
                .unwrap()
                .with_workers(workers);
            engine.roi(0, roi, amr_query::LevelSelect::All).unwrap()
        })
    });
    g.finish();
    std::fs::remove_file(&path).ok();
    std::fs::remove_dir_all(&spath).ok();
}

fn bench_preprocess(c: &mut Criterion) {
    let spec = table1_runs()
        .into_iter()
        .find(|s| s.name == "Nyx_1")
        .expect("Nyx_1");
    let h = spec.build(0.0);
    let coarse = &h.level(0).data;
    let fine_ba = h.level(1).data.box_array();
    let mut g = c.benchmark_group("io_pipeline/preprocess");
    g.bench_function("plan_units_coarse", |b| {
        b.iter(|| plan_units(coarse, Some((fine_ba, 2)), 4, 0, true))
    });
    let plan = plan_units(coarse, Some((fine_ba, 2)), 4, 0, true);
    g.bench_function("extract_units_field0", |b| {
        b.iter(|| extract_units(coarse, &plan, 0))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_writers, bench_read_roi, bench_preprocess
}
criterion_main!(benches);
