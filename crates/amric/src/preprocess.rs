//! AMRIC pre-processing (paper §3.1): redundancy removal and uniform
//! truncation of a rank's AMR data into unit blocks.
//!
//! For every level below the finest, coarse regions covered by the next
//! finer level are discarded (patch-based AMR keeps them but post-analysis
//! never reads them). The surviving rectangles — which AMReX's blocking
//! factor guarantees are unit-aligned — are cut into unit blocks that the
//! reorganization stage hands to the compressor. No positions need to ride
//! in the compressed stream: unit origins are reproducible from the level's
//! box metadata plus the finer level's boxes, exactly the paper's
//! "positions inferred from the box position of level ℓ+1".

use amr_mesh::overlap::coverage;
use amr_mesh::prelude::*;
use sz_codec::{Buffer3, Dims3};

/// One unit block extracted from a level: its global index-space origin
/// and per-field decision to come. Data is extracted per field on demand.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnitRef {
    /// Which box of the level the unit came from.
    pub box_index: usize,
    /// Index-space region of the unit (usually `unit³`, clipped at domain
    /// edges).
    pub region: IntBox,
}

/// The unit edge used for a given level: the finest level uses the
/// run's blocking factor `bf`; each coarser level halves it (refinement
/// ratio 2), floored at 2 — matching the paper's Nyx test (fine 16,
/// coarse 8).
pub fn unit_edge_for_level(bf: i64, level: usize, num_levels: usize) -> i64 {
    let shift = (num_levels - 1 - level) as u32;
    (bf >> shift).max(2)
}

/// Plan the unit decomposition of one level for one rank.
///
/// * `level` / `finer`: the level's data and (for non-finest levels) the
///   next finer level's grids, used for redundancy removal.
/// * `ratio`: refinement ratio to the finer level.
/// * `unit`: unit-block edge for this level.
/// * `rank`: only boxes owned by this rank are planned.
/// * `remove_redundancy`: when false, covered regions are kept (ablation).
pub fn plan_units(
    level: &MultiFab,
    finer: Option<(&BoxArray, i64)>,
    unit: i64,
    rank: usize,
    remove_redundancy: bool,
) -> Vec<UnitRef> {
    plan_units_layout(
        level.box_array(),
        level.distribution(),
        finer,
        unit,
        rank,
        remove_redundancy,
    )
}

/// [`plan_units`] over the bare level layout (grids + ownership) instead
/// of a populated [`MultiFab`]. The query subsystem plans from plotfile
/// metadata alone this way — reconstructing unit decompositions without
/// allocating any field data.
pub fn plan_units_layout(
    ba: &BoxArray,
    dm: &DistributionMapping,
    finer: Option<(&BoxArray, i64)>,
    unit: i64,
    rank: usize,
    remove_redundancy: bool,
) -> Vec<UnitRef> {
    let valid_per_box: Vec<Vec<IntBox>> = match finer {
        Some((fine_ba, ratio)) if remove_redundancy => coverage(ba, fine_ba, ratio)
            .into_iter()
            .map(|c| c.valid)
            .collect(),
        _ => ba.iter().map(|b| vec![*b]).collect(),
    };
    let mut units = Vec::new();
    for bi in dm.local_boxes(rank) {
        for rect in &valid_per_box[bi] {
            for tile in rect.tiles(unit) {
                units.push(UnitRef {
                    box_index: bi,
                    region: tile,
                });
            }
        }
    }
    units
}

/// Inclusive index-space corners `(lo, hi)` of a unit plan's bounding
/// box — the extent format the chunk index persists.
pub type PlanExtent = ([i64; 3], [i64; 3]);

/// Bounding box of a plan's unit regions as inclusive index-space
/// corners (`None` for an empty plan). This is the extent the writer
/// persists in the chunk index and the extent the query engine
/// re-derives for legacy index-less files — one definition, so the two
/// can never drift.
pub fn plan_bounding_box(plan: &[UnitRef]) -> Option<PlanExtent> {
    let first = plan.first()?;
    let mut lo = first.region.lo;
    let mut hi = first.region.hi;
    for u in &plan[1..] {
        lo = lo.min(&u.region.lo);
        hi = hi.max(&u.region.hi);
    }
    Some((
        [lo.get(0), lo.get(1), lo.get(2)],
        [hi.get(0), hi.get(1), hi.get(2)],
    ))
}

/// Extract the field data of the planned units into compressor buffers
/// (Fortran order per unit).
pub fn extract_units(level: &MultiFab, units: &[UnitRef], field: usize) -> Vec<Buffer3> {
    units
        .iter()
        .map(|u| {
            let fab = level.fab(u.box_index);
            let data = fab.extract_region(&u.region, field);
            let sz = u.region.size();
            Buffer3::from_vec(
                Dims3::new(sz.get(0) as usize, sz.get(1) as usize, sz.get(2) as usize),
                data,
            )
        })
        .collect()
}

/// Scatter decompressed units back into a level's fabs (inverse of
/// [`extract_units`]); used by the read path.
pub fn scatter_units(level: &mut MultiFab, units: &[UnitRef], field: usize, data: &[Buffer3]) {
    assert_eq!(units.len(), data.len(), "unit/data count mismatch");
    for (u, buf) in units.iter().zip(data) {
        let sz = u.region.size();
        assert_eq!(
            buf.dims(),
            Dims3::new(sz.get(0) as usize, sz.get(1) as usize, sz.get(2) as usize),
            "unit shape mismatch at {:?}",
            u.region
        );
        let fab = level.fab_mut(u.box_index);
        // Write x-runs.
        let run = sz.get(0) as usize;
        let comp = *fab.domain();
        for (zi, z) in (u.region.lo.get(2)..=u.region.hi.get(2)).enumerate() {
            for (yi, y) in (u.region.lo.get(1)..=u.region.hi.get(1)).enumerate() {
                let start = IntVect::new(u.region.lo.get(0), y, z);
                let di = comp.linear_index(&start);
                let src_off = buf.dims().idx(0, yi, zi);
                let cells = fab.cells();
                fab.data_mut()[field * cells + di..field * cells + di + run]
                    .copy_from_slice(&buf.data()[src_off..src_off + run]);
            }
        }
    }
}

/// Gradient-activity score of one unit block: the mean absolute
/// nearest-neighbor difference over all three axes. Smooth (near-constant
/// or slowly varying) units score near zero; units holding shocks, fronts,
/// or tagged fine structure score high. The adaptive bound policy
/// ([`crate::config::BoundPolicy::GradientAdaptive`]) classifies units by
/// comparing this score against the mean score of the chunk.
///
/// Deterministic in the unit data alone, so the parallel write path needs
/// no extra plumbing to stay byte-identical to serial.
pub fn unit_activity(unit: &Buffer3) -> f64 {
    let d = unit.dims();
    let data = unit.data();
    let mut sum = 0.0f64;
    let mut n = 0u64;
    for k in 0..d.nz {
        for j in 0..d.ny {
            let row = d.idx(0, j, k);
            for i in 1..d.nx {
                sum += (data[row + i] - data[row + i - 1]).abs();
            }
            n += (d.nx - 1) as u64;
        }
    }
    for k in 0..d.nz {
        for j in 1..d.ny {
            let row = d.idx(0, j, k);
            let prev = d.idx(0, j - 1, k);
            for i in 0..d.nx {
                sum += (data[row + i] - data[prev + i]).abs();
            }
            n += d.nx as u64;
        }
    }
    for k in 1..d.nz {
        for j in 0..d.ny {
            let row = d.idx(0, j, k);
            let prev = d.idx(0, j, k - 1);
            for i in 0..d.nx {
                sum += (data[row + i] - data[prev + i]).abs();
            }
            n += d.nx as u64;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Summary of a level's pre-processing for reporting.
#[derive(Clone, Copy, Debug, Default)]
pub struct PreprocessSummary {
    /// Cells owned by the rank before redundancy removal.
    pub owned_cells: u64,
    /// Cells surviving redundancy removal (== sum of unit volumes).
    pub kept_cells: u64,
    /// Number of unit blocks.
    pub num_units: usize,
}

/// Compute the summary for a planned decomposition.
pub fn summarize_units(level: &MultiFab, units: &[UnitRef], rank: usize) -> PreprocessSummary {
    let owned: u64 = level
        .distribution()
        .local_boxes(rank)
        .iter()
        .map(|&bi| level.box_array().get(bi).num_cells())
        .sum();
    PreprocessSummary {
        owned_cells: owned,
        kept_cells: units.iter().map(|u| u.region.num_cells()).sum(),
        num_units: units.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-level fixture: 16³ coarse in 8³ boxes on 2 ranks; fine level
    /// refines coarse cells [4..12)³ (one 8³ coarse region → 16³ fine).
    fn fixture() -> (MultiFab, BoxArray) {
        let ba = BoxArray::decompose(IntBox::from_extents(16, 16, 16), 8);
        let dm = DistributionMapping::round_robin(ba.len(), 2);
        let mut mf = MultiFab::new(ba, dm, vec!["rho".into(), "T".into()]);
        mf.fill_field(0, |p| (p.get(0) + 100 * p.get(1) + 10000 * p.get(2)) as f64);
        mf.fill_field(1, |p| -(p.get(0) as f64));
        let fine = BoxArray::new(vec![IntBox::new(
            IntVect::new(8, 8, 8),
            IntVect::new(23, 23, 23),
        )]);
        (mf, fine)
    }

    #[test]
    fn unit_edges_follow_level() {
        assert_eq!(unit_edge_for_level(16, 1, 2), 16);
        assert_eq!(unit_edge_for_level(16, 0, 2), 8);
        assert_eq!(unit_edge_for_level(8, 0, 3), 2);
        assert_eq!(unit_edge_for_level(4, 0, 4), 2); // floored
    }

    #[test]
    fn plans_cover_owned_non_redundant_cells() {
        let (mf, fine) = fixture();
        for rank in 0..2 {
            let units = plan_units(&mf, Some((&fine, 2)), 4, rank, true);
            let s = summarize_units(&mf, &units, rank);
            // Units tile exactly the valid region.
            assert_eq!(
                s.kept_cells,
                units.iter().map(|u| u.region.num_cells()).sum::<u64>()
            );
            // Unit regions are disjoint and miss the covered cube [4..12)³.
            let covered = IntBox::new(IntVect::new(4, 4, 4), IntVect::new(11, 11, 11));
            for (i, u) in units.iter().enumerate() {
                assert!(!u.region.intersects(&covered), "{:?}", u.region);
                for v in &units[i + 1..] {
                    assert!(!u.region.intersects(&v.region));
                }
            }
        }
        // Both ranks together keep exactly total − covered cells.
        let total_kept: u64 = (0..2)
            .map(|r| {
                let units = plan_units(&mf, Some((&fine, 2)), 4, r, true);
                summarize_units(&mf, &units, r).kept_cells
            })
            .sum();
        assert_eq!(total_kept, 16 * 16 * 16 - 8 * 8 * 8);
    }

    #[test]
    fn no_removal_keeps_everything() {
        let (mf, fine) = fixture();
        let kept: u64 = (0..2)
            .map(|r| {
                let units = plan_units(&mf, Some((&fine, 2)), 4, r, false);
                summarize_units(&mf, &units, r).kept_cells
            })
            .sum();
        assert_eq!(kept, 16 * 16 * 16);
    }

    #[test]
    fn finest_level_keeps_everything() {
        let (mf, _) = fixture();
        let kept: u64 = (0..2)
            .map(|r| {
                let units = plan_units(&mf, None, 8, r, true);
                summarize_units(&mf, &units, r).kept_cells
            })
            .sum();
        assert_eq!(kept, 16 * 16 * 16);
    }

    #[test]
    fn extract_scatter_roundtrip() {
        let (mf, fine) = fixture();
        let units = plan_units(&mf, Some((&fine, 2)), 4, 0, true);
        let bufs = extract_units(&mf, &units, 0);
        // Scatter into a fresh MultiFab and compare on unit regions.
        let mut out = MultiFab::new(
            mf.box_array().clone(),
            mf.distribution().clone(),
            vec!["rho".into(), "T".into()],
        );
        scatter_units(&mut out, &units, 0, &bufs);
        for u in &units {
            for p in u.region.iter_points() {
                assert_eq!(
                    out.fab(u.box_index).get(&p, 0),
                    mf.fab(u.box_index).get(&p, 0)
                );
            }
        }
    }

    #[test]
    fn units_are_aligned_cubes_for_aligned_grids() {
        let (mf, fine) = fixture();
        let units = plan_units(&mf, Some((&fine, 2)), 4, 0, true);
        for u in &units {
            assert!(u.region.is_aligned(4), "{:?}", u.region);
            assert_eq!(u.region.num_cells(), 64);
        }
    }
}
