//! zMesh comparator (Luo et al., IPDPS '21) — the 1-D reordering baseline
//! discussed in the paper's §5.
//!
//! zMesh improves AMR compressibility by laying the data of *different
//! refinement levels* out in one 1-D array ordered by physical position,
//! so spatially adjacent coarse and fine points sit next to each other.
//! Its weakness — the reason AMRIC exists — is that a 1-D traversal throws
//! away higher-dimensional topology, and in situ it needs cross-rank
//! communication to gather neighbouring data. Here it serves as an
//! offline comparator.

use amr_mesh::prelude::*;
use sz_codec::codec::{expect_envelope, write_envelope};
use sz_codec::prelude::*;
use sz_codec::wire::{Reader, Writer};

/// zMesh payload format version (rides in the envelope header).
pub(crate) const VERSION: u8 = 1;

/// A point sample tagged with its position at fine-level resolution
/// (coarse cells map to the even lattice, `2·i`, fine cells to their own
/// index) — the physical-locality key zMesh sorts by.
#[derive(Clone, Copy, Debug)]
struct Sample {
    key: u128,
    value: f64,
}

/// Collect one field of a two-level hierarchy into zMesh order: all
/// points (coarse valid + fine) sorted by the Morton code of their
/// fine-resolution position.
fn zmesh_order(h: &AmrHierarchy, field: usize) -> Vec<Sample> {
    assert!(
        h.num_levels() == 2,
        "zMesh comparator implemented for 2-level data"
    );
    let ratio = h.ref_ratio(0);
    let coarse = &h.level(0).data;
    let fine = &h.level(1).data;
    let cov = amr_mesh::overlap::coverage(coarse.box_array(), fine.box_array(), ratio);
    let mut samples = Vec::new();
    for (bi, c) in cov.iter().enumerate() {
        let fab = coarse.fab(bi);
        for rect in &c.valid {
            for p in rect.iter_points() {
                samples.push(Sample {
                    key: crate::tac::morton3(&p.scaled(ratio)),
                    value: fab.get(&p, field),
                });
            }
        }
    }
    for (_, fab) in fine.iter() {
        for p in fab.domain().iter_points() {
            samples.push(Sample {
                key: crate::tac::morton3(&p),
                value: fab.get(&p, field),
            });
        }
    }
    samples.sort_by_key(|s| s.key);
    samples
}

/// Compress one field zMesh-style: locality-ordered 1-D stream through
/// SZ_L/R's 1-D path. Returns the stream; positions are *not* stored
/// (they are reproducible from the hierarchy metadata, as in zMesh).
pub fn zmesh_compress(h: &AmrHierarchy, field: usize, rel_eb: f64) -> Vec<u8> {
    let samples = zmesh_order(h, field);
    let values: Vec<f64> = samples.iter().map(|s| s.value).collect();
    let (lo, hi) = values
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, u), &v| {
            (l.min(v), u.max(v))
        });
    let range = if hi > lo { hi - lo } else { 0.0 };
    // Constant (range-0) fields fall back to `rel_eb` itself — the same
    // contract as `resolve_abs_eb` and the in-situ writer.
    let abs_eb = sz_codec::quantizer::absolute_bound(rel_eb, range);
    let mut w = Writer::new();
    write_envelope(&mut w, CodecId::Zmesh, VERSION, 0);
    w.put_u64(values.len() as u64);
    w.put_block(&lr::compress_1d(&values, abs_eb));
    w.into_bytes()
}

/// Decompress a zMesh stream against the same hierarchy structure,
/// returning `(values in zMesh order, reconstruction of the original
/// order)` — callers with the hierarchy can invert the ordering.
pub fn zmesh_decompress(h: &AmrHierarchy, field: usize, bytes: &[u8]) -> CodecResult<Vec<f64>> {
    let env = expect_envelope(bytes, CodecId::Zmesh, VERSION)?;
    let mut r = Reader::new(&bytes[env.payload_offset..]);
    let n = r.get_u64()? as usize;
    let buf = lr::decompress(r.get_block()?)?;
    let values = buf.into_vec();
    if values.len() != n {
        return Err(CodecError::dims("zMesh length mismatch"));
    }
    // Sanity: the order must match the hierarchy we were given.
    let samples = zmesh_order(h, field);
    if samples.len() != n {
        return Err(CodecError::dims(format!(
            "hierarchy yields {} samples, stream has {n}",
            samples.len()
        )));
    }
    Ok(values)
}

/// Reference values in zMesh order (for error metrics).
pub fn zmesh_reference(h: &AmrHierarchy, field: usize) -> Vec<f64> {
    zmesh_order(h, field).iter().map(|s| s.value).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use amr_apps::prelude::*;

    fn small_h() -> AmrHierarchy {
        let s = NyxScenario::new(17);
        let cfg = AmrRunConfig {
            coarse_dims: (16, 16, 16),
            max_grid_size: 8,
            blocking_factor: 8,
            nranks: 2,
            num_levels: 2,
            fine_fraction: 0.05,
            grid_eff: 0.7,
        };
        build_hierarchy(&s, &cfg, 0.0)
    }

    #[test]
    fn sample_count_matches_valid_cells() {
        let h = small_h();
        let samples = zmesh_order(&h, 0);
        let cov = amr_mesh::overlap::coverage(
            h.level(0).data.box_array(),
            h.level(1).data.box_array(),
            2,
        );
        let valid: u64 = cov.iter().map(|c| c.valid_cells()).sum();
        let fine = h.level(1).data.num_cells();
        assert_eq!(samples.len() as u64, valid + fine);
    }

    #[test]
    fn roundtrip_within_bound() {
        let h = small_h();
        let bytes = zmesh_compress(&h, 0, 1e-3);
        let back = zmesh_decompress(&h, 0, &bytes).unwrap();
        let reference = zmesh_reference(&h, 0);
        let stats = ErrorStats::compare(&reference, &back);
        let abs = 1e-3 * stats.value_range;
        assert!(stats.max_abs_err <= abs * (1.0 + 1e-9));
    }

    #[test]
    fn locality_ordering_helps_1d() {
        // zMesh's claim: locality order compresses better than naive
        // box-by-box 1-D concatenation.
        let h = small_h();
        let zmesh_len = zmesh_compress(&h, 0, 1e-3).len();
        // Naive: concatenate valid coarse + fine in storage order.
        let mut naive = Vec::new();
        let cov = amr_mesh::overlap::coverage(
            h.level(0).data.box_array(),
            h.level(1).data.box_array(),
            2,
        );
        for (bi, c) in cov.iter().enumerate() {
            for rect in &c.valid {
                naive.extend(h.level(0).data.fab(bi).extract_region(rect, 0));
            }
        }
        for (_, fab) in h.level(1).data.iter() {
            naive.extend_from_slice(fab.comp(0));
        }
        let (lo, hi) = naive
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, u), &v| {
                (l.min(v), u.max(v))
            });
        let naive_len = lr::compress_1d(&naive, 1e-3 * (hi - lo)).len();
        // zMesh should be at least competitive (strictly better on clumpy
        // data with real cross-level redundancy).
        assert!(
            (zmesh_len as f64) < naive_len as f64 * 1.15,
            "zmesh {zmesh_len} vs naive {naive_len}"
        );
    }
}
