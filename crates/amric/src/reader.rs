//! Read/decompress/reassemble path: load an AMRIC (or baseline/no-comp)
//! plotfile back into a hierarchy of [`MultiFab`]s and verify error
//! bounds against the original data.

use crate::pipeline::{decompress_field_units, resolve_abs_eb};
use crate::preprocess::{extract_units, plan_units, scatter_units, unit_edge_for_level, UnitRef};
use crate::writer::field_dataset;
use amr_mesh::prelude::*;
use h5lite::prelude::*;
use sz_codec::prelude::*;

/// Decode-only filter for AMRIC datasets (the reader-side plugin).
struct AmricDecoder;

impl ChunkFilter for AmricDecoder {
    fn id(&self) -> u32 {
        crate::writer::FILTER_AMRIC
    }
    fn encode_into(&self, _chunk: &[f64], _out: &mut Vec<u8>) -> H5Result<()> {
        Err(H5Error::Format("AmricDecoder is read-only".into()))
    }
    fn decode(&self, bytes: &[u8], n_elems: usize) -> H5Result<Vec<f64>> {
        let units = decompress_field_units(bytes)?;
        let mut out = Vec::with_capacity(n_elems);
        for u in units {
            out.extend_from_slice(u.data());
        }
        if out.len() < n_elems {
            return Err(H5Error::Format(format!(
                "decoded {} elems, need {n_elems}",
                out.len()
            )));
        }
        out.truncate(n_elems);
        Ok(out)
    }
}

/// A plotfile loaded back into memory.
pub struct Plotfile {
    /// Field names in component order.
    pub field_names: Vec<String>,
    /// Reconstructed per-level data (cells under finer levels stay zero
    /// when the file was written with redundancy removal).
    pub levels: Vec<MultiFab>,
    /// Level domains.
    pub domains: Vec<IntBox>,
    /// Blocking factor recorded at write time (0 for baseline files).
    pub bf: i64,
    /// Whether redundant coarse data was removed at write time.
    pub remove_redundancy: bool,
    /// Unit plans per `[level][rank]`, as reconstructed from metadata.
    pub unit_plans: Vec<Vec<Vec<UnitRef>>>,
}

struct Header {
    nlevels: usize,
    nfields: usize,
    nranks: usize,
    extra: [u64; 2],
    levels: Vec<(i64, i64, i64, usize, i64)>, // nx, ny, nz, nboxes, ratio
}

fn read_header(r: &H5Reader) -> H5Result<(Header, Vec<String>)> {
    let raw = r.read_dataset("meta/header")?;
    let mut it = raw.iter().map(|&v| v as u64);
    let mut next = || {
        it.next()
            .ok_or_else(|| H5Error::Format("short header".into()))
    };
    let nlevels = next()? as usize;
    let nfields = next()? as usize;
    let nranks = next()? as usize;
    let extra = [next()?, next()?];
    let mut levels = Vec::with_capacity(nlevels);
    for _ in 0..nlevels {
        levels.push((
            next()? as i64,
            next()? as i64,
            next()? as i64,
            next()? as usize,
            next()? as i64,
        ));
    }
    // Field names.
    let raw_names = r.read_dataset("meta/field_names")?;
    let mut names = Vec::with_capacity(nfields);
    let mut pos = 0usize;
    for _ in 0..nfields {
        let len = *raw_names
            .get(pos)
            .ok_or_else(|| H5Error::Format("short field names".into()))? as usize;
        pos += 1;
        let bytes: Vec<u8> = raw_names
            .get(pos..pos + len)
            .ok_or_else(|| H5Error::Format("short field names".into()))?
            .iter()
            .map(|&v| v as u8)
            .collect();
        pos += len;
        names.push(
            String::from_utf8(bytes).map_err(|_| H5Error::Format("field name not UTF-8".into()))?,
        );
    }
    Ok((
        Header {
            nlevels,
            nfields,
            nranks,
            extra,
            levels,
        },
        names,
    ))
}

fn read_level_structure(
    r: &H5Reader,
    level: usize,
    nboxes: usize,
    nranks: usize,
    field_names: &[String],
) -> H5Result<MultiFab> {
    let raw = r.read_dataset(&format!("meta/level_{level}/boxes"))?;
    if raw.len() != nboxes * 7 {
        return Err(H5Error::Format(format!(
            "level {level}: box table holds {} values, expected {}",
            raw.len(),
            nboxes * 7
        )));
    }
    let mut boxes = Vec::with_capacity(nboxes);
    let mut owners = Vec::with_capacity(nboxes);
    for b in 0..nboxes {
        let v = &raw[b * 7..(b + 1) * 7];
        boxes.push(IntBox::new(
            IntVect::new(v[0] as i64, v[1] as i64, v[2] as i64),
            IntVect::new(v[3] as i64, v[4] as i64, v[5] as i64),
        ));
        owners.push(v[6] as usize);
    }
    let ba = BoxArray::new(boxes);
    let dm = DistributionMapping::from_owners(owners, nranks);
    Ok(MultiFab::new(ba, dm, field_names.to_vec()))
}

/// Load an AMRIC plotfile (written by [`crate::writer::write_amric`]).
pub fn read_amric_hierarchy(path: impl AsRef<std::path::Path>) -> H5Result<Plotfile> {
    let r = H5Reader::open(path)?;
    let (header, field_names) = read_header(&r)?;
    let bf = header.extra[0] as i64;
    let remove_redundancy = header.extra[1] == 1;
    let mut levels = Vec::with_capacity(header.nlevels);
    let mut domains = Vec::with_capacity(header.nlevels);
    for (l, &(nx, ny, nz, nboxes, _)) in header.levels.iter().enumerate() {
        domains.push(IntBox::from_extents(nx, ny, nz));
        levels.push(read_level_structure(
            &r,
            l,
            nboxes,
            header.nranks,
            &field_names,
        )?);
    }
    // Reconstruct unit plans exactly as the writer made them.
    let mut unit_plans = Vec::with_capacity(header.nlevels);
    for l in 0..header.nlevels {
        let finer_ba = (l + 1 < header.nlevels).then(|| levels[l + 1].box_array().clone());
        let unit = unit_edge_for_level(bf, l, header.nlevels);
        let plans: Vec<Vec<UnitRef>> = (0..header.nranks)
            .map(|rank| {
                plan_units(
                    &levels[l],
                    finer_ba.as_ref().map(|ba| (ba, header.levels[l].4)),
                    unit,
                    rank,
                    remove_redundancy,
                )
            })
            .collect();
        unit_plans.push(plans);
    }
    // Decode every field of every level and scatter into the fabs.
    for l in 0..header.nlevels {
        for f in 0..header.nfields {
            let data = r.read_dataset_with(&field_dataset(l, f), &AmricDecoder)?;
            let mut offset = 0usize;
            for plan in unit_plans[l].iter() {
                let cells: usize = plan.iter().map(|u| u.region.num_cells() as usize).sum();
                let seg = data.get(offset..offset + cells).ok_or_else(|| {
                    H5Error::Format(format!("level {l} field {f}: dataset too short"))
                })?;
                // Cut the segment back into unit buffers.
                let mut bufs = Vec::with_capacity(plan.len());
                let mut p = 0usize;
                for u in plan {
                    let n = u.region.num_cells() as usize;
                    let sz = u.region.size();
                    bufs.push(Buffer3::from_vec(
                        Dims3::new(sz.get(0) as usize, sz.get(1) as usize, sz.get(2) as usize),
                        seg[p..p + n].to_vec(),
                    ));
                    p += n;
                }
                scatter_units(&mut levels[l], plan, f, &bufs);
                offset += cells;
            }
        }
    }
    Ok(Plotfile {
        field_names,
        levels,
        domains,
        bf,
        remove_redundancy,
        unit_plans,
    })
}

/// Load a baseline / no-compression plotfile (written by
/// [`crate::baseline::write_amrex_baseline`] or
/// [`crate::baseline::write_nocomp`]).
pub fn read_baseline_hierarchy(path: impl AsRef<std::path::Path>) -> H5Result<Plotfile> {
    let r = H5Reader::open(path)?;
    let (header, field_names) = read_header(&r)?;
    let mut levels = Vec::with_capacity(header.nlevels);
    let mut domains = Vec::with_capacity(header.nlevels);
    for (l, &(nx, ny, nz, nboxes, _)) in header.levels.iter().enumerate() {
        domains.push(IntBox::from_extents(nx, ny, nz));
        levels.push(read_level_structure(
            &r,
            l,
            nboxes,
            header.nranks,
            &field_names,
        )?);
    }
    for (l, level) in levels.iter_mut().enumerate() {
        let meta = r.meta(&format!("level_{l}/data"))?.clone();
        let chunk_elems = meta.chunk_elems as usize;
        let data = r.read_dataset(&format!("level_{l}/data"))?;
        let rank_elems: Vec<u64> = r
            .read_dataset(&format!("meta/level_{l}/rank_elems"))?
            .iter()
            .map(|&v| v as u64)
            .collect();
        // Standard-mode chunks pad each rank's tail to the chunk boundary.
        let padded = |n: u64| -> usize {
            if meta.filter_mode == FilterMode::Standard {
                (n as usize).div_ceil(chunk_elems) * chunk_elems
            } else {
                n as usize
            }
        };
        let mut offset = 0usize;
        for (rank, &elems) in rank_elems.iter().enumerate() {
            let seg = data
                .get(offset..offset + elems as usize)
                .ok_or_else(|| H5Error::Format(format!("level {l}: short data segment")))?;
            // Unpack box payloads (fields interleaved per box).
            let mut p = 0usize;
            for bi in level.distribution().local_boxes(rank) {
                let cells = level.box_array().get(bi).num_cells() as usize;
                let n = cells * header.nfields;
                let payload = &seg[p..p + n];
                level.fab_mut(bi).data_mut().copy_from_slice(payload);
                p += n;
            }
            offset += padded(elems);
        }
    }
    Ok(Plotfile {
        field_names,
        levels,
        domains,
        bf: 0,
        remove_redundancy: false,
        unit_plans: Vec::new(),
    })
}

/// Verification result for one field.
#[derive(Clone, Debug)]
pub struct FieldVerification {
    /// Field index.
    pub field: usize,
    /// Error statistics over all verified (valid) cells.
    pub stats: ErrorStats,
    /// True when every verified cell respects the per-rank resolved
    /// absolute bound for `rel_eb`.
    pub bound_ok: bool,
}

/// Compare a loaded plotfile against the original hierarchy on the valid
/// (non-redundant) cells and check the error-bound contract at `rel_eb`,
/// resolved per (level, field) against the global (all-rank) value range —
/// mirroring the writer's REL semantics.
pub fn verify_against(
    pf: &Plotfile,
    original: &AmrHierarchy,
    rel_eb: f64,
) -> Vec<FieldVerification> {
    assert_eq!(pf.levels.len(), original.num_levels());
    let nfields = pf.field_names.len();
    let mut out = Vec::with_capacity(nfields);
    for f in 0..nfields {
        let mut orig_all = Vec::new();
        let mut recon_all = Vec::new();
        let mut bound_ok = true;
        for (l, level) in pf.levels.iter().enumerate() {
            let plans: Vec<Vec<UnitRef>> = if pf.unit_plans.is_empty() {
                // Baseline file: verify every cell, box by box, one "rank".
                vec![level
                    .box_array()
                    .iter()
                    .enumerate()
                    .map(|(bi, b)| UnitRef {
                        box_index: bi,
                        region: *b,
                    })
                    .collect()]
            } else {
                pf.unit_plans[l].clone()
            };
            // Global per-(level, field) bound, as the writer resolved it.
            let all_units: Vec<sz_codec::Buffer3> = plans
                .iter()
                .flat_map(|plan| extract_units(&original.level(l).data, plan, f))
                .collect();
            if all_units.is_empty() {
                continue;
            }
            let abs_eb = resolve_abs_eb(&all_units, rel_eb);
            for plan in &plans {
                let orig_units = extract_units(&original.level(l).data, plan, f);
                for (u, ou) in plan.iter().zip(&orig_units) {
                    let recon = level.fab(u.box_index).extract_region(&u.region, f);
                    for (&o, &rv) in ou.data().iter().zip(&recon) {
                        if (o - rv).abs() > abs_eb * (1.0 + 1e-9) {
                            bound_ok = false;
                        }
                        orig_all.push(o);
                        recon_all.push(rv);
                    }
                }
            }
        }
        out.push(FieldVerification {
            field: f,
            stats: ErrorStats::compare(&orig_all, &recon_all),
            bound_ok,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AmricConfig, BaselineConfig};
    use crate::writer::write_amric;
    use amr_apps::prelude::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("amric-reader-{}-{name}.h5l", std::process::id()));
        p
    }

    fn small_h(seed: u64) -> AmrHierarchy {
        let s = NyxScenario::new(seed);
        let cfg = AmrRunConfig {
            coarse_dims: (16, 16, 16),
            max_grid_size: 8,
            blocking_factor: 8,
            nranks: 2,
            num_levels: 2,
            fine_fraction: 0.05,
            grid_eff: 0.7,
        };
        build_hierarchy(&s, &cfg, 0.0)
    }

    #[test]
    fn amric_roundtrip_respects_bounds() {
        let h = small_h(31);
        let path = tmp("rt-lr");
        write_amric(&path, &h, &AmricConfig::lr(1e-3), 8).unwrap();
        let pf = read_amric_hierarchy(&path).unwrap();
        assert_eq!(pf.field_names.len(), 6);
        assert_eq!(pf.levels.len(), 2);
        let checks = verify_against(&pf, &h, 1e-3);
        for c in &checks {
            assert!(c.bound_ok, "field {} violates bound", c.field);
            assert!(
                c.stats.psnr() > 40.0,
                "field {} PSNR {}",
                c.field,
                c.stats.psnr()
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn amric_interp_roundtrip() {
        let h = small_h(32);
        let path = tmp("rt-interp");
        write_amric(&path, &h, &AmricConfig::interp(1e-3), 8).unwrap();
        let pf = read_amric_hierarchy(&path).unwrap();
        let checks = verify_against(&pf, &h, 1e-3);
        for c in &checks {
            assert!(c.bound_ok, "field {} violates bound", c.field);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn baseline_roundtrip() {
        let h = small_h(33);
        let path = tmp("rt-base");
        crate::baseline::write_amrex_baseline(&path, &h, &BaselineConfig::new(1e-2)).unwrap();
        let pf = read_baseline_hierarchy(&path).unwrap();
        // Baseline mixes fields under one bound; just check reconstruction
        // is sane (finite, reasonably close).
        let checks = verify_against(&pf, &h, 1e-2);
        for c in &checks {
            assert!(c.stats.mse.is_finite());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn nocomp_roundtrip_is_exact() {
        let h = small_h(34);
        let path = tmp("rt-raw");
        crate::baseline::write_nocomp(&path, &h).unwrap();
        let pf = read_baseline_hierarchy(&path).unwrap();
        let checks = verify_against(&pf, &h, 1e-12);
        for c in &checks {
            assert_eq!(c.stats.max_abs_err, 0.0, "field {}", c.field);
        }
        std::fs::remove_file(&path).ok();
    }
}
