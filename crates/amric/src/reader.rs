//! Read/decompress/reassemble path: load an AMRIC (or baseline/no-comp)
//! plotfile back into a hierarchy of [`MultiFab`]s and verify error
//! bounds against the original data.

use crate::pipeline::{decompress_field_units, resolve_abs_eb};
use crate::preprocess::{
    extract_units, plan_units_layout, scatter_units, unit_edge_for_level, UnitRef,
};
use crate::writer::field_dataset;
use amr_mesh::prelude::*;
use h5lite::prelude::*;
use sz_codec::prelude::*;

/// Decode-only filter for AMRIC datasets (the reader-side plugin).
struct AmricDecoder;

impl ChunkFilter for AmricDecoder {
    fn id(&self) -> u32 {
        crate::writer::FILTER_AMRIC
    }
    fn encode_into(&self, _chunk: &[f64], _out: &mut Vec<u8>) -> H5Result<()> {
        Err(H5Error::Format("AmricDecoder is read-only".into()))
    }
    fn decode(&self, bytes: &[u8], n_elems: usize) -> H5Result<Vec<f64>> {
        let units = decompress_field_units(bytes)?;
        let mut out = Vec::with_capacity(n_elems);
        for u in units {
            out.extend_from_slice(u.data());
        }
        if out.len() < n_elems {
            return Err(H5Error::Format(format!(
                "decoded {} elems, need {n_elems}",
                out.len()
            )));
        }
        out.truncate(n_elems);
        Ok(out)
    }
}

/// A plotfile loaded back into memory.
pub struct Plotfile {
    /// Field names in component order.
    pub field_names: Vec<String>,
    /// Reconstructed per-level data (cells under finer levels stay zero
    /// when the file was written with redundancy removal).
    pub levels: Vec<MultiFab>,
    /// Level domains.
    pub domains: Vec<IntBox>,
    /// Blocking factor recorded at write time (0 for baseline files).
    pub bf: i64,
    /// Whether redundant coarse data was removed at write time.
    pub remove_redundancy: bool,
    /// Unit plans per `[level][rank]`, as reconstructed from metadata.
    pub unit_plans: Vec<Vec<Vec<UnitRef>>>,
}

struct Header {
    nlevels: usize,
    nranks: usize,
    extra: [u64; 2],
    levels: Vec<(i64, i64, i64, usize, i64)>, // nx, ny, nz, nboxes, ratio
}

/// Grid structure of one plotfile level — everything the read side knows
/// about a level before touching any field data.
#[derive(Clone, Debug)]
pub struct LevelLayout {
    /// The level's index-space domain.
    pub domain: IntBox,
    /// The level's grids.
    pub boxes: BoxArray,
    /// Grid → rank ownership recorded at write time.
    pub owners: DistributionMapping,
    /// Refinement ratio to the next finer level (0 on the finest).
    pub ratio_to_finer: i64,
}

/// Structural metadata of a plotfile: fields, level layouts, and the
/// write-time settings needed to reconstruct unit plans — parsed from the
/// `meta/*` datasets alone, without decoding any field payload. This is
/// the planning substrate of the `amr-query` random-access subsystem;
/// [`read_amric_hierarchy`] builds on the same reconstruction, so partial
/// and full reads can never disagree about where data lives.
#[derive(Clone, Debug)]
pub struct PlotfileMeta {
    /// Field names in component order.
    pub field_names: Vec<String>,
    /// World size the file was written with (= chunks per field dataset).
    pub nranks: usize,
    /// Blocking factor recorded at write time (0 for baseline files).
    pub bf: i64,
    /// Whether redundant coarse data was removed at write time.
    pub remove_redundancy: bool,
    /// Per-level grid structure, coarsest first.
    pub levels: Vec<LevelLayout>,
}

impl PlotfileMeta {
    /// Number of AMR levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Unit-block edge for a level (the writer's decomposition rule).
    pub fn unit_edge(&self, level: usize) -> i64 {
        unit_edge_for_level(self.bf, level, self.levels.len())
    }

    /// Cumulative refinement factor from level 0 to `level` (level-0
    /// coordinates × this factor = `level` coordinates).
    pub fn refine_factor(&self, level: usize) -> i64 {
        self.levels[..level]
            .iter()
            .map(|l| l.ratio_to_finer.max(1))
            .product()
    }

    /// Reconstruct one rank's unit plan for a level, exactly as the
    /// writer decomposed it (fine-over-coarse redundancy removal
    /// included) — unit positions never ride in the file.
    pub fn unit_plan(&self, level: usize, rank: usize) -> Vec<UnitRef> {
        let finer = (level + 1 < self.levels.len()).then(|| {
            (
                &self.levels[level + 1].boxes,
                self.levels[level].ratio_to_finer,
            )
        });
        plan_units_layout(
            &self.levels[level].boxes,
            &self.levels[level].owners,
            finer,
            self.unit_edge(level),
            rank,
            self.remove_redundancy,
        )
    }

    /// All unit plans, `[level][rank]` — the layout of every field
    /// dataset's chunks.
    pub fn unit_plans(&self) -> Vec<Vec<Vec<UnitRef>>> {
        (0..self.levels.len())
            .map(|l| (0..self.nranks).map(|r| self.unit_plan(l, r)).collect())
            .collect()
    }
}

/// Parse a plotfile's structural metadata (header, field names, level
/// box tables) from an open reader.
pub fn read_plotfile_meta(r: &H5Reader) -> H5Result<PlotfileMeta> {
    let (header, field_names) = read_header(r)?;
    let mut levels = Vec::with_capacity(header.nlevels);
    for (l, &(nx, ny, nz, nboxes, ratio)) in header.levels.iter().enumerate() {
        let (boxes, owners) = read_level_layout(r, l, nboxes, header.nranks)?;
        levels.push(LevelLayout {
            domain: IntBox::from_extents(nx, ny, nz),
            boxes,
            owners,
            ratio_to_finer: ratio,
        });
    }
    Ok(PlotfileMeta {
        field_names,
        nranks: header.nranks,
        bf: header.extra[0] as i64,
        remove_redundancy: header.extra[1] == 1,
        levels,
    })
}

fn read_header(r: &H5Reader) -> H5Result<(Header, Vec<String>)> {
    let raw = r.read_dataset("meta/header")?;
    let mut it = raw.iter().map(|&v| v as u64);
    let mut next = || {
        it.next()
            .ok_or_else(|| H5Error::Format("short header".into()))
    };
    let nlevels = next()? as usize;
    let nfields = next()? as usize;
    let nranks = next()? as usize;
    let extra = [next()?, next()?];
    let mut levels = Vec::with_capacity(nlevels);
    for _ in 0..nlevels {
        levels.push((
            next()? as i64,
            next()? as i64,
            next()? as i64,
            next()? as usize,
            next()? as i64,
        ));
    }
    // Field names.
    let raw_names = r.read_dataset("meta/field_names")?;
    let mut names = Vec::with_capacity(nfields);
    let mut pos = 0usize;
    for _ in 0..nfields {
        let len = *raw_names
            .get(pos)
            .ok_or_else(|| H5Error::Format("short field names".into()))? as usize;
        pos += 1;
        let bytes: Vec<u8> = raw_names
            .get(pos..pos + len)
            .ok_or_else(|| H5Error::Format("short field names".into()))?
            .iter()
            .map(|&v| v as u8)
            .collect();
        pos += len;
        names.push(
            String::from_utf8(bytes).map_err(|_| H5Error::Format("field name not UTF-8".into()))?,
        );
    }
    Ok((
        Header {
            nlevels,
            nranks,
            extra,
            levels,
        },
        names,
    ))
}

fn read_level_layout(
    r: &H5Reader,
    level: usize,
    nboxes: usize,
    nranks: usize,
) -> H5Result<(BoxArray, DistributionMapping)> {
    let raw = r.read_dataset(&format!("meta/level_{level}/boxes"))?;
    if raw.len() != nboxes * 7 {
        return Err(H5Error::Format(format!(
            "level {level}: box table holds {} values, expected {}",
            raw.len(),
            nboxes * 7
        )));
    }
    let mut boxes = Vec::with_capacity(nboxes);
    let mut owners = Vec::with_capacity(nboxes);
    for b in 0..nboxes {
        let v = &raw[b * 7..(b + 1) * 7];
        boxes.push(IntBox::new(
            IntVect::new(v[0] as i64, v[1] as i64, v[2] as i64),
            IntVect::new(v[3] as i64, v[4] as i64, v[5] as i64),
        ));
        owners.push(v[6] as usize);
    }
    Ok((
        BoxArray::new(boxes),
        DistributionMapping::from_owners(owners, nranks),
    ))
}

/// Load an AMRIC plotfile (written by [`crate::writer::write_amric`]).
pub fn read_amric_hierarchy(path: impl AsRef<std::path::Path>) -> H5Result<Plotfile> {
    let r = H5Reader::open(path)?;
    let meta = read_plotfile_meta(&r)?;
    let nfields = meta.field_names.len();
    let domains: Vec<IntBox> = meta.levels.iter().map(|l| l.domain).collect();
    let mut levels: Vec<MultiFab> = meta
        .levels
        .iter()
        .map(|l| MultiFab::new(l.boxes.clone(), l.owners.clone(), meta.field_names.clone()))
        .collect();
    // Reconstruct unit plans exactly as the writer made them.
    let unit_plans = meta.unit_plans();
    // Decode every field of every level and scatter into the fabs.
    for l in 0..meta.num_levels() {
        for f in 0..nfields {
            let data = r.read_dataset_with(&field_dataset(l, f), &AmricDecoder)?;
            let mut offset = 0usize;
            for plan in unit_plans[l].iter() {
                let cells: usize = plan.iter().map(|u| u.region.num_cells() as usize).sum();
                let seg = data.get(offset..offset + cells).ok_or_else(|| {
                    H5Error::Format(format!("level {l} field {f}: dataset too short"))
                })?;
                // Cut the segment back into unit buffers.
                let mut bufs = Vec::with_capacity(plan.len());
                let mut p = 0usize;
                for u in plan {
                    let n = u.region.num_cells() as usize;
                    let sz = u.region.size();
                    bufs.push(Buffer3::from_vec(
                        Dims3::new(sz.get(0) as usize, sz.get(1) as usize, sz.get(2) as usize),
                        seg[p..p + n].to_vec(),
                    ));
                    p += n;
                }
                scatter_units(&mut levels[l], plan, f, &bufs);
                offset += cells;
            }
        }
    }
    Ok(Plotfile {
        field_names: meta.field_names,
        levels,
        domains,
        bf: meta.bf,
        remove_redundancy: meta.remove_redundancy,
        unit_plans,
    })
}

/// Load a baseline / no-compression plotfile (written by
/// [`crate::baseline::write_amrex_baseline`] or
/// [`crate::baseline::write_nocomp`]).
pub fn read_baseline_hierarchy(path: impl AsRef<std::path::Path>) -> H5Result<Plotfile> {
    let r = H5Reader::open(path)?;
    let pmeta = read_plotfile_meta(&r)?;
    let nfields = pmeta.field_names.len();
    let domains: Vec<IntBox> = pmeta.levels.iter().map(|l| l.domain).collect();
    let mut levels: Vec<MultiFab> = pmeta
        .levels
        .iter()
        .map(|l| MultiFab::new(l.boxes.clone(), l.owners.clone(), pmeta.field_names.clone()))
        .collect();
    for (l, level) in levels.iter_mut().enumerate() {
        let meta = r.meta(&format!("level_{l}/data"))?.clone();
        let chunk_elems = meta.chunk_elems as usize;
        let data = r.read_dataset(&format!("level_{l}/data"))?;
        let rank_elems: Vec<u64> = r
            .read_dataset(&format!("meta/level_{l}/rank_elems"))?
            .iter()
            .map(|&v| v as u64)
            .collect();
        // Standard-mode chunks pad each rank's tail to the chunk boundary.
        let padded = |n: u64| -> usize {
            if meta.filter_mode == FilterMode::Standard {
                (n as usize).div_ceil(chunk_elems) * chunk_elems
            } else {
                n as usize
            }
        };
        let mut offset = 0usize;
        for (rank, &elems) in rank_elems.iter().enumerate() {
            let seg = data
                .get(offset..offset + elems as usize)
                .ok_or_else(|| H5Error::Format(format!("level {l}: short data segment")))?;
            // Unpack box payloads (fields interleaved per box).
            let mut p = 0usize;
            for bi in level.distribution().local_boxes(rank) {
                let cells = level.box_array().get(bi).num_cells() as usize;
                let n = cells * nfields;
                let payload = &seg[p..p + n];
                level.fab_mut(bi).data_mut().copy_from_slice(payload);
                p += n;
            }
            offset += padded(elems);
        }
    }
    Ok(Plotfile {
        field_names: pmeta.field_names,
        levels,
        domains,
        bf: 0,
        remove_redundancy: false,
        unit_plans: Vec::new(),
    })
}

/// Verification result for one field.
#[derive(Clone, Debug)]
pub struct FieldVerification {
    /// Field index.
    pub field: usize,
    /// Error statistics over all verified (valid) cells.
    pub stats: ErrorStats,
    /// True when every verified cell respects the per-rank resolved
    /// absolute bound for `rel_eb`.
    pub bound_ok: bool,
}

/// Compare a loaded plotfile against the original hierarchy on the valid
/// (non-redundant) cells and check the error-bound contract at `rel_eb`,
/// resolved per (level, field) against the global (all-rank) value range —
/// mirroring the writer's REL semantics.
pub fn verify_against(
    pf: &Plotfile,
    original: &AmrHierarchy,
    rel_eb: f64,
) -> Vec<FieldVerification> {
    assert_eq!(pf.levels.len(), original.num_levels());
    let nfields = pf.field_names.len();
    let mut out = Vec::with_capacity(nfields);
    for f in 0..nfields {
        let mut orig_all = Vec::new();
        let mut recon_all = Vec::new();
        let mut bound_ok = true;
        for (l, level) in pf.levels.iter().enumerate() {
            let plans: Vec<Vec<UnitRef>> = if pf.unit_plans.is_empty() {
                // Baseline file: verify every cell, box by box, one "rank".
                vec![level
                    .box_array()
                    .iter()
                    .enumerate()
                    .map(|(bi, b)| UnitRef {
                        box_index: bi,
                        region: *b,
                    })
                    .collect()]
            } else {
                pf.unit_plans[l].clone()
            };
            // Global per-(level, field) bound, as the writer resolved it.
            let all_units: Vec<sz_codec::Buffer3> = plans
                .iter()
                .flat_map(|plan| extract_units(&original.level(l).data, plan, f))
                .collect();
            if all_units.is_empty() {
                continue;
            }
            let abs_eb = resolve_abs_eb(&all_units, rel_eb);
            for plan in &plans {
                let orig_units = extract_units(&original.level(l).data, plan, f);
                for (u, ou) in plan.iter().zip(&orig_units) {
                    let recon = level.fab(u.box_index).extract_region(&u.region, f);
                    for (&o, &rv) in ou.data().iter().zip(&recon) {
                        if (o - rv).abs() > abs_eb * (1.0 + 1e-9) {
                            bound_ok = false;
                        }
                        orig_all.push(o);
                        recon_all.push(rv);
                    }
                }
            }
        }
        out.push(FieldVerification {
            field: f,
            stats: ErrorStats::compare(&orig_all, &recon_all),
            bound_ok,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AmricConfig, BaselineConfig};
    use crate::writer::write_amric;
    use amr_apps::prelude::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("amric-reader-{}-{name}.h5l", std::process::id()));
        p
    }

    fn small_h(seed: u64) -> AmrHierarchy {
        let s = NyxScenario::new(seed);
        let cfg = AmrRunConfig {
            coarse_dims: (16, 16, 16),
            max_grid_size: 8,
            blocking_factor: 8,
            nranks: 2,
            num_levels: 2,
            fine_fraction: 0.05,
            grid_eff: 0.7,
        };
        build_hierarchy(&s, &cfg, 0.0)
    }

    #[test]
    fn amric_roundtrip_respects_bounds() {
        let h = small_h(31);
        let path = tmp("rt-lr");
        write_amric(&path, &h, &AmricConfig::lr(1e-3), 8).unwrap();
        let pf = read_amric_hierarchy(&path).unwrap();
        assert_eq!(pf.field_names.len(), 6);
        assert_eq!(pf.levels.len(), 2);
        let checks = verify_against(&pf, &h, 1e-3);
        for c in &checks {
            assert!(c.bound_ok, "field {} violates bound", c.field);
            assert!(
                c.stats.psnr() > 40.0,
                "field {} PSNR {}",
                c.field,
                c.stats.psnr()
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn amric_interp_roundtrip() {
        let h = small_h(32);
        let path = tmp("rt-interp");
        write_amric(&path, &h, &AmricConfig::interp(1e-3), 8).unwrap();
        let pf = read_amric_hierarchy(&path).unwrap();
        let checks = verify_against(&pf, &h, 1e-3);
        for c in &checks {
            assert!(c.bound_ok, "field {} violates bound", c.field);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn baseline_roundtrip() {
        let h = small_h(33);
        let path = tmp("rt-base");
        crate::baseline::write_amrex_baseline(&path, &h, &BaselineConfig::new(1e-2)).unwrap();
        let pf = read_baseline_hierarchy(&path).unwrap();
        // Baseline mixes fields under one bound; just check reconstruction
        // is sane (finite, reasonably close).
        let checks = verify_against(&pf, &h, 1e-2);
        for c in &checks {
            assert!(c.stats.mse.is_finite());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn nocomp_roundtrip_is_exact() {
        let h = small_h(34);
        let path = tmp("rt-raw");
        crate::baseline::write_nocomp(&path, &h).unwrap();
        let pf = read_baseline_hierarchy(&path).unwrap();
        let checks = verify_against(&pf, &h, 1e-12);
        for c in &checks {
            assert_eq!(c.stats.max_abs_err, 0.0, "field {}", c.field);
        }
        std::fs::remove_file(&path).ok();
    }
}
