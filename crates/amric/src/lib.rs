//! # amric — in-situ lossy compression for AMR applications
//!
//! Rust reproduction of **AMRIC** (Wang et al., SC '23): an in-situ
//! error-bounded lossy compression framework for patch-based AMR codes.
//! See README.md at the repository root for the full system inventory and
//! the experiment index.
//!
//! ## The `Codec` API
//!
//! AMRIC is a *framework* hosting several error-bounded compressors, so
//! the public surface is organized around `sz_codec`'s `Codec` trait:
//! compress unit blocks into a caller-provided buffer
//! (`compress_into(&units, &mut out)`), decompress any self-describing
//! stream back. [`codec`] implements the trait for the four families this
//! crate owns — [`codec::AmricCodec`] (the full pipeline),
//! [`codec::TacCodec`], [`codec::ZmeshCodec`], and
//! [`codec::BaselineCodec`] — and `sz-codec` contributes SZ_L/R and
//! SZ_Interp. All six share one stream envelope, so
//! [`codec::decompress_auto`] decodes any stream produced anywhere in the
//! workspace:
//!
//! ```
//! use amric::prelude::*;
//! use sz_codec::prelude::*;
//!
//! let units = vec![Buffer3::zeros(Dims3::cube(8)); 4];
//! let codec = AmricCodec::new(AmricConfig::lr(1e-3), 8);
//! let mut stream = Vec::new(); // reused across chunks in hot paths
//! codec.compress_into(&units, &mut stream).unwrap();
//! assert_eq!(decompress_auto(&stream).unwrap().len(), 4);
//! ```
//!
//! Malformed streams fail through the typed `CodecError` hierarchy
//! (never a panic), and configurations are built with `with_*` chains on
//! the [`config::AmricConfig::lr`] / [`config::AmricConfig::interp`]
//! presets.
//!
//! ## The pipeline (paper §3)
//!
//! 1. [`preprocess`] — remove redundant coarse data via box intersections,
//!    truncate the remainder into unit blocks;
//! 2. [`reorganize`] — arrange unit blocks linearly (SZ_L/R) or as a
//!    near-cube cluster (SZ_Interp);
//! 3. [`pipeline`] — the optimized SZ compression (Shared Lossless
//!    Encoding + adaptive block size) producing self-describing streams;
//! 4. [`writer`]/[`reader`] — the in-situ HDF5-filter path with AMRIC's
//!    field-major layout and size-aware global chunking;
//! 5. [`baseline`] — AMReX's stock 1-D small-chunk compression for
//!    comparison, plus [`tac`] and [`zmesh`] offline comparators.

pub mod baseline;
pub mod codec;
pub mod config;
pub mod parallel;
pub mod pipeline;
pub mod preprocess;
pub mod reader;
pub mod reorganize;
pub mod tac;
pub mod temporal;
pub mod writer;
pub mod zmesh;

pub use codec::{decompress_auto, default_registry};
pub use config::{AmricConfig, BaselineConfig, BoundPolicy, MergePolicy, WriteParallelism};
pub use parallel::compress_chunks_parallel;
pub use pipeline::{stream_unit_bounds, ResolvedBound};

/// Commonly used items.
pub mod prelude {
    pub use crate::baseline::{write_amrex_baseline, write_nocomp};
    pub use crate::codec::{
        decompress_auto, default_registry, AmricCodec, BaselineCodec, TacCodec, ZmeshCodec,
    };
    pub use crate::config::{
        AmricConfig, BaselineConfig, BoundPolicy, MergePolicy, WriteParallelism,
    };
    pub use crate::parallel::compress_chunks_parallel;
    pub use crate::pipeline::{
        compress_field_units, compress_field_units_resolved, compress_field_units_resolved_into,
        compress_field_units_resolved_pooled, compress_field_units_with_bound,
        compress_field_units_with_bound_into, compress_field_units_with_bound_pooled,
        decompress_field_units, resolve_abs_eb, stream_unit_bounds, AmricScratch, ResolvedBound,
    };
    pub use crate::preprocess::{
        extract_units, plan_units, plan_units_layout, scatter_units, unit_activity,
        unit_edge_for_level, UnitRef,
    };
    pub use crate::reader::{
        read_amric_hierarchy, read_plotfile_meta, verify_against, LevelLayout, PlotfileMeta,
    };
    pub use crate::temporal::{
        read_temporal_hierarchy, read_temporal_meta, TemporalFieldFilter, TemporalMeta,
        TemporalReadState, TemporalSession, TemporalSessionConfig, FILTER_TEMPORAL,
    };
    pub use crate::writer::{
        write_amric, write_amric_sharded, write_amric_to, write_field_parallel, FieldWriteJob,
        WriteReport,
    };
}
