//! # amric — in-situ lossy compression for AMR applications
//!
//! Rust reproduction of **AMRIC** (Wang et al., SC '23): an in-situ
//! error-bounded lossy compression framework for patch-based AMR codes.
//! See README.md at the repository root for the full system inventory and
//! the experiment index.
//!
//! The pipeline (paper §3):
//! 1. [`preprocess`] — remove redundant coarse data via box intersections,
//!    truncate the remainder into unit blocks;
//! 2. [`reorganize`] — arrange unit blocks linearly (SZ_L/R) or as a
//!    near-cube cluster (SZ_Interp);
//! 3. [`pipeline`] — the optimized SZ compression (Shared Lossless
//!    Encoding + adaptive block size) producing self-describing streams;
//! 4. [`writer`]/[`reader`] — the in-situ HDF5-filter path with AMRIC's
//!    field-major layout and size-aware global chunking;
//! 5. [`baseline`] — AMReX's stock 1-D small-chunk compression for
//!    comparison, plus [`tac`] and [`zmesh`] offline comparators.

pub mod baseline;
pub mod config;
pub mod pipeline;
pub mod preprocess;
pub mod reader;
pub mod reorganize;
pub mod tac;
pub mod writer;
pub mod zmesh;

pub use config::{AmricConfig, BaselineConfig, MergePolicy};

/// Commonly used items.
pub mod prelude {
    pub use crate::baseline::{write_amrex_baseline, write_nocomp};
    pub use crate::config::{AmricConfig, BaselineConfig, MergePolicy};
    pub use crate::pipeline::{compress_field_units, decompress_field_units, resolve_abs_eb};
    pub use crate::preprocess::{
        extract_units, plan_units, scatter_units, unit_edge_for_level, UnitRef,
    };
    pub use crate::reader::{read_amric_hierarchy, verify_against};
    pub use crate::writer::{write_amric, WriteReport};
}
