//! Cross-snapshot temporal compression sessions — threading the
//! `sz_codec::temporal` delta family through the AMRIC write/read paths.
//!
//! A [`TemporalSession`] writes a *series* of snapshots. For each one it
//! plans units exactly like [`crate::writer::write_amric_to`], then maps
//! every unit against the previous snapshot's plan **by region identity**
//! (same level, same rank, same index-space box): units whose region
//! survived regridding delta-code against the previous snapshot's
//! *decoded* values; units whose region changed level or layout fall back
//! to the spatial-only path inside the same stream. Mapped streams are
//! additionally **size-gated**: a surviving region only proves the layout
//! held still, so each (level, rank, field) stream is encoded both ways
//! and the smaller one ships — temporal output is never larger than
//! spatial-only output, even under dynamics violent enough that residuals
//! cost more than the field itself. The session retains
//! the decoded state of everything it writes (returned by the codec
//! during encoding — never a second decode pass), so the next snapshot
//! predicts from exactly what any reader will reconstruct and error never
//! accumulates across steps.
//!
//! Reference linkage is recorded twice, at different granularities:
//!
//! * the per-chunk **chunk index** entry carries the reference snapshot
//!   id ([`h5lite::ChunkIndexEntry::reference`]) so random access — the
//!   `amr-query` planner — can resolve which prior file a delta chunk
//!   needs without decoding anything, and
//! * the small `meta/temporal` dataset stores
//!   `[snapshot_id, reference_id]` for the whole file (0 = none).
//!
//! `decompress_auto` keeps working stream-by-stream: spatial-only
//! temporal streams are self-contained, and delta streams fail with a
//! typed error naming the missing reference rather than decoding wrong
//! data (see the `sz_codec::temporal` module docs).

use crate::preprocess::{
    extract_units, plan_bounding_box, plan_units, unit_edge_for_level, PlanExtent, UnitRef,
};
use crate::reader::{read_plotfile_meta, Plotfile};
use crate::writer::{field_dataset, fold_receipt, write_metadata, WriteReport};
use amr_mesh::prelude::*;
use h5lite::prelude::*;
use rankpar::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;
use sz_codec::codec::CodecId;
use sz_codec::temporal::{TemporalCodec, TemporalConfig, TemporalReference};
use sz_codec::{Buffer3, Codec, CodecError};

/// Filter id for the temporal delta filter (registered like the AMRIC
/// filter, outside h5lite's built-in registry).
pub const FILTER_TEMPORAL: u32 = 101;

/// Chunk-filter face of the temporal family — carries the dataset
/// metadata (filter id, unit edge) and decodes **self-contained** chunks
/// for generic readers. Delta chunks need their reference and are decoded
/// by [`read_temporal_hierarchy`], which resolves references per rank.
#[derive(Clone, Copy, Debug)]
pub struct TemporalFieldFilter {
    /// Unit-block edge for the level being written.
    pub unit_edge: usize,
}

impl ChunkFilter for TemporalFieldFilter {
    fn id(&self) -> u32 {
        FILTER_TEMPORAL
    }

    fn client_data(&self) -> Vec<u8> {
        vec![self.unit_edge as u8]
    }

    fn encode_into(&self, _chunk: &[f64], _out: &mut Vec<u8>) -> H5Result<()> {
        // The session encodes through the codec directly (it needs the
        // decoded state back); the filter only describes the dataset.
        Err(H5Error::Format(
            "TemporalFieldFilter encodes through TemporalSession".into(),
        ))
    }

    fn decode(&self, bytes: &[u8], n_elems: usize) -> H5Result<Vec<f64>> {
        let units = TemporalCodec::decoder()
            .decompress(bytes)
            .map_err(H5Error::Codec)?;
        let mut out = Vec::with_capacity(n_elems);
        for u in units {
            out.extend_from_slice(u.data());
        }
        if out.len() < n_elems {
            return Err(H5Error::Format(format!(
                "temporal chunk decoded {} elems, need {n_elems}",
                out.len()
            )));
        }
        out.truncate(n_elems);
        Ok(out)
    }
}

/// Session-level configuration (a snapshot's streams are still fully
/// self-describing; this drives the write side only).
#[derive(Clone, Copy, Debug)]
pub struct TemporalSessionConfig {
    /// Value-range-relative error bound, resolved per (level, field)
    /// against the global range — same REL semantics as the AMRIC writer.
    pub rel_eb: f64,
    /// Remove redundant coarse data under finer levels (paper §3.1).
    pub remove_redundancy: bool,
    /// SZ block size of the spatial fallback streams.
    pub block_size: usize,
}

impl TemporalSessionConfig {
    /// Stock configuration at the given relative bound.
    pub fn new(rel_eb: f64) -> Self {
        TemporalSessionConfig {
            rel_eb,
            remove_redundancy: true,
            block_size: 6,
        }
    }
}

/// Everything the session retains about the previous snapshot: its id,
/// its unit plans (for region-identity mapping), and the decoded units of
/// every (level, rank, field) stream, already wrapped as codec references.
struct PrevSnapshot {
    id: u64,
    nfields: usize,
    /// `[level][rank]` unit plans of the previous snapshot.
    plans: Vec<Vec<Vec<UnitRef>>>,
    /// `[level][rank][field]` decoded reference state.
    refs: Vec<Vec<Vec<Arc<TemporalReference>>>>,
}

/// Per-(rank, level) outcome carried out of the rank closures.
struct LevelOut {
    extent: Option<PlanExtent>,
    plan: Vec<UnitRef>,
    any_delta: bool,
    field_refs: Vec<Arc<TemporalReference>>,
}

/// A multi-snapshot temporal write session. Create one per series, call
/// [`TemporalSession::write`] once per snapshot (each snapshot is its own
/// container file); the first snapshot — and any unit whose region the
/// regrid schedule moved — is coded spatially, everything else as deltas.
pub struct TemporalSession {
    cfg: TemporalSessionConfig,
    bf: i64,
    next_id: u64,
    prev: Option<PrevSnapshot>,
    /// Automatic keyframe cadence: every `n`-th write drops the retained
    /// reference first (0 = never, the default).
    keyframe_interval: u64,
    /// Writes since the last keyframe (a spatial-only snapshot).
    since_keyframe: u64,
}

/// Corner-tuple key for region-identity unit mapping (IntBox carries no
/// Hash impl; the corners are the identity that matters).
fn region_key(b: &IntBox) -> ([i64; 3], [i64; 3]) {
    (
        [b.lo.get(0), b.lo.get(1), b.lo.get(2)],
        [b.hi.get(0), b.hi.get(1), b.hi.get(2)],
    )
}

impl TemporalSession {
    /// New session; `bf` is the blocking factor of the hierarchies the
    /// session will write (drives unit sizes, fixed across the series).
    pub fn new(cfg: TemporalSessionConfig, bf: i64) -> Self {
        TemporalSession {
            cfg,
            bf,
            next_id: 1,
            prev: None,
            keyframe_interval: 0,
            since_keyframe: 0,
        }
    }

    /// Automatic [`reset_reference`](TemporalSession::reset_reference)
    /// cadence: every `n`-th snapshot is written spatial-only (a
    /// keyframe), bounding every delta chain to `n - 1` links so a reader
    /// never has to walk more than `n` files and a lost snapshot orphans
    /// at most one interval. `n = 1` disables delta coding entirely;
    /// `n = 0` means no automatic cadence (the default). A manual
    /// `reset_reference` call restarts the interval count.
    pub fn with_keyframe_interval(mut self, n: u64) -> Self {
        self.keyframe_interval = n;
        self
    }

    /// Snapshot id the next [`TemporalSession::write`] call will record.
    pub fn next_snapshot_id(&self) -> u64 {
        self.next_id
    }

    /// Drop the retained reference state: the next snapshot is written
    /// spatial-only, starting a fresh delta chain.
    pub fn reset_reference(&mut self) {
        self.prev = None;
        self.since_keyframe = 0;
    }

    /// Write one snapshot of the series to a new container at `path`.
    pub fn write(
        &mut self,
        path: impl AsRef<std::path::Path>,
        h: &AmrHierarchy,
    ) -> H5Result<WriteReport> {
        self.write_to(Arc::new(H5Writer::create(path)?), h)
    }

    /// Backend-agnostic variant of [`TemporalSession::write`]: runs the
    /// rank collectives against an already-created writer and finishes
    /// the container.
    pub fn write_to(&mut self, writer: Arc<H5Writer>, h: &AmrHierarchy) -> H5Result<WriteReport> {
        // Keyframe cadence: due snapshots drop the reference *before*
        // encoding, so the stream, chunk index, and `meta/temporal` all
        // record a self-contained snapshot (no reference anywhere).
        if self.keyframe_interval > 0 && self.since_keyframe >= self.keyframe_interval {
            self.reset_reference();
        }
        self.since_keyframe += 1;
        let nranks = h.level(0).data.distribution().nranks();
        let num_levels = h.num_levels();
        let nfields = h.field_names().len();
        let id = self.next_id;
        let cfg = self.cfg;
        let bf = self.bf;
        let prev = self.prev.as_ref();

        type RankOutcome = (IoLedger, f64, Vec<LevelOut>);
        let per_rank: Vec<RankOutcome> = run_ranks(nranks, |comm| {
            let rank = comm.rank();
            let mut ledger = IoLedger::default();
            let mut prep_s = 0.0;
            let mut levels_out = Vec::with_capacity(num_levels);
            for l in 0..num_levels {
                let level = &h.level(l).data;
                let finer =
                    (l + 1 < num_levels).then(|| (h.level(l + 1).data.box_array(), h.ref_ratio(l)));
                let unit = unit_edge_for_level(bf, l, num_levels);
                let t0 = Instant::now();
                let units = plan_units(level, finer, unit, rank, cfg.remove_redundancy);
                let extent = plan_bounding_box(&units);
                // Regrid-aware mapping: a unit delta-codes iff the same
                // region existed in this rank's plan for this level last
                // snapshot. Any level/layout change (refined away,
                // coarsened, redistributed, re-truncated) misses the map
                // and falls back to spatial coding.
                let unit_refs: Vec<Option<u32>> = match prev {
                    Some(p) if l < p.plans.len() && p.nfields == nfields => {
                        let by_region: HashMap<_, u32> = p.plans[l][rank]
                            .iter()
                            .enumerate()
                            .map(|(i, u)| (region_key(&u.region), i as u32))
                            .collect();
                        units
                            .iter()
                            .map(|u| by_region.get(&region_key(&u.region)).copied())
                            .collect()
                    }
                    _ => vec![None; units.len()],
                };
                let any_mapped = unit_refs.iter().any(Option::is_some);
                prep_s += t0.elapsed().as_secs_f64();
                // Set iff any field stream of this (level, rank) actually
                // shipped delta-coded bytes — the chunk index records the
                // reference only then.
                let mut any_delta = false;
                let mut field_refs = Vec::with_capacity(nfields);
                for f in 0..nfields {
                    let t0 = Instant::now();
                    let bufs = extract_units(level, &units, f);
                    let staged_cells: usize = bufs.iter().map(|b| b.dims().len()).sum();
                    prep_s += t0.elapsed().as_secs_f64();
                    // Global REL bound and global chunk size, same
                    // collective sequence as the AMRIC writer.
                    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                    for b in &bufs {
                        for &v in b.data() {
                            lo = lo.min(v);
                            hi = hi.max(v);
                        }
                    }
                    let ranges = comm.allgather((lo, hi));
                    let glo = ranges.iter().map(|r| r.0).fold(f64::INFINITY, f64::min);
                    let ghi = ranges.iter().map(|r| r.1).fold(f64::NEG_INFINITY, f64::max);
                    let range = if ghi > glo { ghi - glo } else { 0.0 };
                    let abs_eb = sz_codec::quantizer::absolute_bound(cfg.rel_eb, range);
                    let chunk_elems = comm.allreduce_max(staged_cells as u64) as usize;
                    let tcfg = TemporalConfig {
                        abs_eb,
                        block_size: cfg.block_size,
                    };
                    let filter = TemporalFieldFilter {
                        unit_edge: unit as usize,
                    };
                    let (frames, decoded) = if chunk_elems == 0 {
                        (Vec::new(), Vec::new())
                    } else {
                        let t0 = Instant::now();
                        // Size-aware mode choice: a surviving region only
                        // proves the *layout* held still — violent dynamics
                        // can make residuals cost more than re-coding the
                        // field spatially. Encode both ways when a mapping
                        // exists and ship the smaller stream, so temporal
                        // output is never larger than spatial-only output.
                        let mut bytes = Vec::new();
                        let (_, mut decoded) = TemporalCodec::spatial(tcfg)
                            .compress_with_state(&bufs, &mut bytes)
                            .expect("temporal encode failed");
                        if any_mapped {
                            let delta = TemporalCodec::with_reference(
                                tcfg,
                                prev.expect("mapping implies prev").refs[l][rank][f].clone(),
                                unit_refs.clone(),
                            );
                            let mut delta_bytes = Vec::new();
                            let (_, delta_decoded) = delta
                                .compress_with_state(&bufs, &mut delta_bytes)
                                .expect("temporal encode failed");
                            if delta_bytes.len() < bytes.len() {
                                bytes = delta_bytes;
                                decoded = delta_decoded;
                                any_delta = true;
                            }
                        }
                        let frame = EncodedFrame {
                            bytes,
                            logical_elems: staged_cells as u64,
                            encode_seconds: t0.elapsed().as_secs_f64(),
                        };
                        (vec![frame], decoded)
                    };
                    let receipt = collective_write_frames(
                        &comm,
                        &writer,
                        &field_dataset(l, f),
                        Some(frames),
                        chunk_elems.max(1),
                        &filter,
                        FilterMode::SizeAware,
                    )
                    .expect("collective write failed");
                    fold_receipt(&mut ledger, &receipt);
                    field_refs.push(Arc::new(TemporalReference::new(id, decoded)));
                }
                levels_out.push(LevelOut {
                    extent,
                    plan: units,
                    any_delta,
                    field_refs,
                });
            }
            if rank == 0 {
                write_metadata(&writer, h, &[bf as u64, u64::from(cfg.remove_redundancy)])
                    .expect("metadata write failed");
            }
            comm.barrier();
            (ledger, prep_s, levels_out)
        });

        // Transpose the rank outcomes into [level][rank] order.
        let mut ledgers = Vec::with_capacity(nranks);
        let mut prep_seconds = Vec::with_capacity(nranks);
        let mut extents: Vec<Vec<Option<PlanExtent>>> = vec![Vec::new(); num_levels];
        let mut deltas: Vec<Vec<bool>> = vec![Vec::new(); num_levels];
        let mut plans: Vec<Vec<Vec<UnitRef>>> = vec![Vec::new(); num_levels];
        let mut refs: Vec<Vec<Vec<Arc<TemporalReference>>>> = vec![Vec::new(); num_levels];
        for (ledger, prep, levels_out) in per_rank {
            ledgers.push(ledger);
            prep_seconds.push(prep);
            for (l, out) in levels_out.into_iter().enumerate() {
                extents[l].push(out.extent);
                deltas[l].push(out.any_delta);
                plans[l].push(out.plan);
                refs[l].push(out.field_refs);
            }
        }

        // Chunk index: codec id + extent per rank chunk, plus the
        // reference snapshot id on chunks that delta-code.
        let prev_id = prev.map(|p| p.id);
        for l in 0..num_levels {
            let entries: Vec<ChunkIndexEntry> = if extents[l].iter().all(Option::is_none) {
                Vec::new()
            } else {
                extents[l]
                    .iter()
                    .zip(&deltas[l])
                    .map(|(e, &delta)| {
                        let entry = ChunkIndexEntry::new(CodecId::Temporal as u32, *e);
                        match (delta, prev_id) {
                            (true, Some(rid)) => entry.with_reference(rid),
                            _ => entry,
                        }
                    })
                    .collect()
            };
            for f in 0..nfields {
                writer.set_chunk_index(&field_dataset(l, f), ChunkIndex::new(entries.clone()))?;
            }
        }
        // Whole-file temporal linkage (0 = no reference).
        writer.write_dataset(
            "meta/temporal",
            &[id as f64, prev_id.unwrap_or(0) as f64],
            2,
            &NoFilter,
        )?;
        writer.finish()?;

        self.prev = Some(PrevSnapshot {
            id,
            nfields,
            plans,
            refs,
        });
        self.next_id += 1;
        let stored = ledgers.iter().map(|l| l.bytes_written).sum();
        Ok(WriteReport {
            nranks,
            ledgers,
            prep_seconds,
            orig_bytes: h.snapshot_bytes(),
            stored_bytes: stored,
        })
    }
}

/// Temporal linkage of one file, from its `meta/temporal` dataset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TemporalMeta {
    /// This snapshot's id within its write session.
    pub snapshot_id: u64,
    /// Snapshot id this file's delta chunks predict from, if any.
    pub reference_id: Option<u64>,
}

/// Read the temporal linkage of an open container. Errors on files
/// without a `meta/temporal` dataset (non-temporal plotfiles).
pub fn read_temporal_meta(r: &H5Reader) -> H5Result<TemporalMeta> {
    let raw = r.read_dataset("meta/temporal")?;
    if raw.len() < 2 {
        return Err(H5Error::Format(format!(
            "meta/temporal holds {} values, expected 2",
            raw.len()
        )));
    }
    let reference = raw[1] as u64;
    Ok(TemporalMeta {
        snapshot_id: raw[0] as u64,
        reference_id: (reference != 0).then_some(reference),
    })
}

/// Decoded reference state carried between [`read_temporal_hierarchy`]
/// calls — the read-side mirror of the session's retained state.
pub struct TemporalReadState {
    /// Snapshot id of the decoded file.
    pub id: u64,
    /// `[level][rank][field]` decoded reference state.
    refs: Vec<Vec<Vec<Arc<TemporalReference>>>>,
}

/// Load one snapshot of a temporal series from an open container,
/// resolving delta chunks against `prev` (the state returned by decoding
/// the referenced snapshot). Pass `None` for the first snapshot of a
/// chain; a delta file decoded without its reference fails with a typed
/// error, and a `prev` whose id does not match the file's recorded
/// reference id is rejected before any chunk is touched.
pub fn read_temporal_hierarchy(
    r: &H5Reader,
    prev: Option<&TemporalReadState>,
) -> H5Result<(Plotfile, TemporalReadState)> {
    let meta = read_plotfile_meta(r)?;
    let tmeta = read_temporal_meta(r)?;
    if let (Some(rid), Some(p)) = (tmeta.reference_id, prev) {
        if p.id != rid {
            return Err(H5Error::Format(format!(
                "file references snapshot {rid}, reader holds {}",
                p.id
            )));
        }
    }
    let nfields = meta.field_names.len();
    let domains: Vec<IntBox> = meta.levels.iter().map(|l| l.domain).collect();
    let mut levels: Vec<MultiFab> = meta
        .levels
        .iter()
        .map(|l| MultiFab::new(l.boxes.clone(), l.owners.clone(), meta.field_names.clone()))
        .collect();
    let unit_plans = meta.unit_plans();
    let mut refs: Vec<Vec<Vec<Arc<TemporalReference>>>> = Vec::with_capacity(meta.num_levels());
    for l in 0..meta.num_levels() {
        let nchunks = r.meta(&field_dataset(l, 0))?.chunks.len();
        let mut level_refs: Vec<Vec<Arc<TemporalReference>>> = Vec::with_capacity(meta.nranks);
        for (rank, plan) in unit_plans[l].iter().enumerate().take(meta.nranks) {
            let mut rank_refs = Vec::with_capacity(nfields);
            for f in 0..nfields {
                if rank >= nchunks {
                    // Chunk-less level: nothing stored, nothing to
                    // reference next snapshot.
                    rank_refs.push(Arc::new(TemporalReference::new(
                        tmeta.snapshot_id,
                        Vec::new(),
                    )));
                    continue;
                }
                let raw = r.read_chunk_raw(&field_dataset(l, f), rank)?;
                let codec = match prev {
                    Some(p) if l < p.refs.len() && rank < p.refs[l].len() => {
                        TemporalCodec::decoder_with(p.refs[l][rank][f].clone())
                    }
                    _ => TemporalCodec::decoder(),
                };
                let units = codec.decompress(&raw).map_err(H5Error::Codec)?;
                if units.len() != plan.len() {
                    return Err(H5Error::Codec(CodecError::dims(format!(
                        "level {l} field {f} rank {rank}: {} units decoded, plan has {}",
                        units.len(),
                        plan.len()
                    ))));
                }
                for (u, p) in units.iter().zip(plan) {
                    let sz = p.region.size();
                    let want = sz_codec::Dims3::new(
                        sz.get(0) as usize,
                        sz.get(1) as usize,
                        sz.get(2) as usize,
                    );
                    if u.dims() != want {
                        return Err(H5Error::Codec(CodecError::dims(format!(
                            "level {l} field {f} rank {rank}: unit dims {:?} != plan {want:?}",
                            u.dims()
                        ))));
                    }
                }
                scatter_units_checked(&mut levels[l], plan, f, &units);
                rank_refs.push(Arc::new(TemporalReference::new(tmeta.snapshot_id, units)));
            }
            level_refs.push(rank_refs);
        }
        refs.push(level_refs);
    }
    let pf = Plotfile {
        field_names: meta.field_names,
        levels,
        domains,
        bf: meta.bf,
        remove_redundancy: meta.remove_redundancy,
        unit_plans,
    };
    Ok((
        pf,
        TemporalReadState {
            id: tmeta.snapshot_id,
            refs,
        },
    ))
}

/// `scatter_units` behind the dims validation above (units are already
/// checked against the plan; this is just the paste).
fn scatter_units_checked(level: &mut MultiFab, plan: &[UnitRef], field: usize, units: &[Buffer3]) {
    crate::preprocess::scatter_units(level, plan, field, units);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::verify_against;
    use amr_apps::prelude::*;

    fn series_cfg() -> AmrRunConfig {
        AmrRunConfig {
            coarse_dims: (16, 16, 16),
            max_grid_size: 8,
            blocking_factor: 8,
            nranks: 2,
            num_levels: 2,
            fine_fraction: 0.05,
            grid_eff: 0.7,
        }
    }

    fn write_series(dt: f64, nsteps: usize, rel_eb: f64) -> Vec<(AmrHierarchy, H5Reader)> {
        let scenario = NyxScenario::new(11);
        let cfg = series_cfg();
        let mut session = TemporalSession::new(TemporalSessionConfig::new(rel_eb), 8);
        TimeSeries::new(&scenario, cfg, dt, nsteps)
            .map(|(_, _, h)| {
                let (w, mem) = H5Writer::in_memory();
                session.write_to(Arc::new(w), &h).unwrap();
                (h, H5Reader::from_storage(Box::new(mem)).unwrap())
            })
            .collect()
    }

    #[test]
    fn series_roundtrip_respects_bounds() {
        let rel_eb = 1e-3;
        let series = write_series(0.02, 3, rel_eb);
        let mut state: Option<TemporalReadState> = None;
        for (step, (h, reader)) in series.iter().enumerate() {
            let (pf, next) = read_temporal_hierarchy(reader, state.as_ref()).unwrap();
            for c in verify_against(&pf, h, rel_eb) {
                assert!(c.bound_ok, "step {step} field {} violates bound", c.field);
            }
            state = Some(next);
        }
    }

    #[test]
    fn later_snapshots_record_reference_linkage() {
        let series = write_series(0.02, 2, 1e-3);
        let first = read_temporal_meta(&series[0].1).unwrap();
        assert_eq!(first.snapshot_id, 1);
        assert_eq!(first.reference_id, None);
        let second = read_temporal_meta(&series[1].1).unwrap();
        assert_eq!(second.snapshot_id, 2);
        assert_eq!(second.reference_id, Some(1));
        // The chunk index carries the reference per chunk.
        let idx = series[1].1.chunk_index("level_0/field_0").unwrap().unwrap();
        assert!(!idx.entries.is_empty());
        assert!(
            idx.entries.iter().any(|e| e.reference == Some(1)),
            "no chunk records its reference: {:?}",
            idx.entries
        );
        assert!(idx
            .entries
            .iter()
            .all(|e| e.codec_id == CodecId::Temporal as u32));
    }

    #[test]
    fn delta_file_without_reference_fails_typed() {
        let series = write_series(0.02, 2, 1e-3);
        let err = match read_temporal_hierarchy(&series[1].1, None) {
            Err(e) => e,
            Ok(_) => panic!("delta file must not decode without its reference"),
        };
        assert!(
            matches!(err.as_codec(), Some(CodecError::BadParameter { .. })),
            "{err:?}"
        );
        // Mismatched reference state is rejected up front.
        let (_, state0) = read_temporal_hierarchy(&series[0].1, None).unwrap();
        let (_, state1) = read_temporal_hierarchy(&series[1].1, Some(&state0)).unwrap();
        assert!(read_temporal_hierarchy(&series[1].1, Some(&state1)).is_err());
    }

    #[test]
    fn session_reset_starts_fresh_chain() {
        let scenario = NyxScenario::new(11);
        let cfg = series_cfg();
        let mut session = TemporalSession::new(TemporalSessionConfig::new(1e-3), 8);
        let h = build_hierarchy(&scenario, &cfg, 0.0);
        let (w1, m1) = H5Writer::in_memory();
        session.write_to(Arc::new(w1), &h).unwrap();
        session.reset_reference();
        let (w2, m2) = H5Writer::in_memory();
        session.write_to(Arc::new(w2), &h).unwrap();
        let r2 = H5Reader::from_storage(Box::new(m2)).unwrap();
        assert_eq!(read_temporal_meta(&r2).unwrap().reference_id, None);
        // Self-contained: decodes with no prior state.
        let (pf, _) = read_temporal_hierarchy(&r2, None).unwrap();
        for c in verify_against(&pf, &h, 1e-3) {
            assert!(c.bound_ok);
        }
        drop(m1);
    }

    #[test]
    fn keyframe_interval_resets_chain_automatically() {
        // Interval 2: snapshots 1, 3, 5, … are keyframes. The chain
        // contract for a keyframe is total — `meta/temporal` records no
        // reference, every chunk index entry carries none, and the file
        // decodes with no prior state.
        let scenario = NyxScenario::new(11);
        let cfg = series_cfg();
        let mut session =
            TemporalSession::new(TemporalSessionConfig::new(1e-3), 8).with_keyframe_interval(2);
        let series: Vec<(AmrHierarchy, H5Reader)> = TimeSeries::new(&scenario, cfg, 0.02, 5)
            .map(|(_, _, h)| {
                let (w, mem) = H5Writer::in_memory();
                session.write_to(Arc::new(w), &h).unwrap();
                (h, H5Reader::from_storage(Box::new(mem)).unwrap())
            })
            .collect();
        let refs: Vec<Option<u64>> = series
            .iter()
            .map(|(_, r)| read_temporal_meta(r).unwrap().reference_id)
            .collect();
        assert_eq!(refs, vec![None, Some(1), None, Some(3), None]);
        for keyframe in [2usize, 4] {
            let (h, reader) = &series[keyframe];
            let meta = read_plotfile_meta(reader).unwrap();
            for l in 0..meta.num_levels() {
                for f in 0..meta.field_names.len() {
                    let idx = reader.chunk_index(&field_dataset(l, f)).unwrap().unwrap();
                    for e in &idx.entries {
                        assert_eq!(e.reference, None, "keyframe chunk carries a reference");
                    }
                }
            }
            // Self-contained: decodes with no prior state, within bound.
            let (pf, _) = read_temporal_hierarchy(reader, None).unwrap();
            for c in verify_against(&pf, h, 1e-3) {
                assert!(c.bound_ok);
            }
        }
        // A delta snapshot in between still needs its reference.
        assert!(read_temporal_hierarchy(&series[1].1, None).is_err());
    }

    #[test]
    fn keyframe_interval_one_disables_deltas_and_manual_reset_restarts_count() {
        let scenario = NyxScenario::new(11);
        let cfg = series_cfg();
        let mut every =
            TemporalSession::new(TemporalSessionConfig::new(1e-3), 8).with_keyframe_interval(1);
        for (_, _, h) in TimeSeries::new(&scenario, cfg, 0.02, 3) {
            let (w, mem) = H5Writer::in_memory();
            every.write_to(Arc::new(w), &h).unwrap();
            let r = H5Reader::from_storage(Box::new(mem)).unwrap();
            assert_eq!(read_temporal_meta(&r).unwrap().reference_id, None);
        }
        // Manual reset restarts the interval: with interval 3, snapshots
        // 1 and 4 would be keyframes, but a reset before #3 makes the
        // cadence 1, 3, 6.
        let mut session =
            TemporalSession::new(TemporalSessionConfig::new(1e-3), 8).with_keyframe_interval(3);
        let mut refs = Vec::new();
        for (i, (_, _, h)) in TimeSeries::new(&scenario, cfg, 0.02, 6).enumerate() {
            if i == 2 {
                session.reset_reference();
            }
            let (w, mem) = H5Writer::in_memory();
            session.write_to(Arc::new(w), &h).unwrap();
            let r = H5Reader::from_storage(Box::new(mem)).unwrap();
            refs.push(read_temporal_meta(&r).unwrap().reference_id);
        }
        assert_eq!(
            refs,
            vec![None, Some(1), None, Some(3), Some(4), None],
            "manual reset must restart the keyframe count"
        );
    }

    #[test]
    fn decompress_auto_handles_every_stream_given_reference() {
        // Acceptance criterion: every temporal stream round-trips bitwise
        // through decompress_auto given its reference — a registry with
        // the right reference installed returns exactly what the session
        // reader reconstructs.
        let series = write_series(0.02, 2, 1e-3);
        let (_, state0) = read_temporal_hierarchy(&series[0].1, None).unwrap();
        let (pf1, _) = read_temporal_hierarchy(&series[1].1, Some(&state0)).unwrap();
        let reader = &series[1].1;
        let meta = read_plotfile_meta(reader).unwrap();
        for l in 0..meta.num_levels() {
            for f in 0..meta.field_names.len() {
                let name = field_dataset(l, f);
                let nchunks = reader.meta(&name).unwrap().chunks.len();
                for rank in 0..nchunks {
                    let raw = reader.read_chunk_raw(&name, rank).unwrap();
                    let mut reg = crate::codec::default_registry();
                    reg.register(Box::new(TemporalCodec::decoder_with(
                        state0.refs[l][rank][f].clone(),
                    )));
                    let units = reg.decompress_auto(&raw).unwrap();
                    // Bitwise parity with the session reader's scatter.
                    let plan = &pf1.unit_plans[l][rank];
                    for (u, p) in units.iter().zip(plan) {
                        let recon = pf1.levels[l].fab(p.box_index).extract_region(&p.region, f);
                        for (a, b) in u.data().iter().zip(&recon) {
                            assert_eq!(a.to_bits(), b.to_bits());
                        }
                    }
                }
            }
        }
    }
}
