//! Comparison writers: AMReX's stock in-situ compression (1-D SZ through
//! small standard-mode chunks on the interleaved layout, §2.3/§5) and the
//! no-compression path.

use crate::config::BaselineConfig;
use crate::writer::{fold_receipt, ints_to_f64, write_metadata, WriteReport};
use amr_mesh::prelude::*;
use h5lite::prelude::*;
use rankpar::prelude::*;
use std::sync::Arc;
use std::time::Instant;

/// Stage a rank's data for one level in AMReX plotfile layout: for each
/// owned box (in local order), all fields back to back.
pub(crate) fn stage_amrex_layout(level: &MultiFab, rank: usize) -> Vec<f64> {
    let mut staged = Vec::new();
    for bi in level.distribution().local_boxes(rank) {
        staged.extend_from_slice(level.fab(bi).data());
    }
    staged
}

/// Write per-level per-rank element counts (needed to strip chunk padding
/// on read).
fn write_rank_elems(writer: &H5Writer, level: usize, elems: &[u64]) -> H5Result<()> {
    let elems_f = ints_to_f64(elems.iter().copied());
    writer.write_dataset(
        &format!("meta/level_{level}/rank_elems"),
        &elems_f,
        elems_f.len().max(1),
        &NoFilter,
    )
}

/// AMReX's original compression solution: the box-interleaved layout
/// forces a tiny chunk size (1024 elements), the filter is 1-D SZ_L/R in
/// standard (padding-unaware) mode, and one error bound covers all fields
/// of a rank's payload mixed together.
pub fn write_amrex_baseline(
    path: impl AsRef<std::path::Path>,
    h: &AmrHierarchy,
    cfg: &BaselineConfig,
) -> H5Result<WriteReport> {
    let nranks = h.level(0).data.distribution().nranks();
    let writer = Arc::new(H5Writer::create(path)?);
    let num_levels = h.num_levels();

    let per_rank: Vec<(IoLedger, f64)> = run_ranks(nranks, |comm| {
        let rank = comm.rank();
        let mut ledger = IoLedger::default();
        let mut prep_s = 0.0;
        for l in 0..num_levels {
            let level = &h.level(l).data;
            let t0 = Instant::now();
            let staged = stage_amrex_layout(level, rank);
            prep_s += t0.elapsed().as_secs_f64();
            // H5Z-SZ REL mode: the bound resolves per chunk. Chunks cut
            // across field boundaries inside a box payload, so different
            // fields share one bound — the §3.3 Challenge-1 flaw,
            // reproduced at its real (chunk) granularity.
            let filter = SzFilter::one_dimensional(cfg.rel_eb);
            // The small chunk size forces one compressor call per 1024
            // elements (§4.4's launch-cost analysis).
            let chunks: Vec<ChunkData> = staged
                .chunks(cfg.chunk_elems)
                .map(|c| ChunkData::full(c.to_vec()))
                .collect();
            let receipt = collective_write(
                &comm,
                &writer,
                &format!("level_{l}/data"),
                &chunks,
                cfg.chunk_elems,
                &filter,
                FilterMode::Standard,
            )
            .expect("collective write failed");
            fold_receipt(&mut ledger, &receipt);
            let elems = comm.allgather(staged.len() as u64);
            if rank == 0 {
                write_rank_elems(&writer, l, &elems).expect("rank_elems write failed");
            }
        }
        if rank == 0 {
            write_metadata(&writer, h, &[0, 0]).expect("metadata write failed");
        }
        comm.barrier();
        (ledger, prep_s)
    });

    writer.finish()?;
    let (ledgers, prep_seconds): (Vec<IoLedger>, Vec<f64>) = per_rank.into_iter().unzip();
    let stored = ledgers.iter().map(|l| l.bytes_written).sum();
    Ok(WriteReport {
        nranks,
        ledgers,
        prep_seconds,
        orig_bytes: h.snapshot_bytes(),
        stored_bytes: stored,
    })
}

/// The no-compression path: same AMReX layout, raw bytes, one write per
/// rank per level (no filter pipeline at all).
pub fn write_nocomp(path: impl AsRef<std::path::Path>, h: &AmrHierarchy) -> H5Result<WriteReport> {
    let nranks = h.level(0).data.distribution().nranks();
    let writer = Arc::new(H5Writer::create(path)?);
    let num_levels = h.num_levels();

    let per_rank: Vec<(IoLedger, f64)> = run_ranks(nranks, |comm| {
        let rank = comm.rank();
        let mut ledger = IoLedger::default();
        let mut prep_s = 0.0;
        for l in 0..num_levels {
            let level = &h.level(l).data;
            let t0 = Instant::now();
            let staged = stage_amrex_layout(level, rank);
            prep_s += t0.elapsed().as_secs_f64();
            let staged_len = staged.len() as u64;
            let chunk_elems = comm.allreduce_max(staged_len) as usize;
            let chunks = if staged.is_empty() {
                Vec::new()
            } else {
                vec![ChunkData::full(staged)]
            };
            let receipt = collective_write(
                &comm,
                &writer,
                &format!("level_{l}/data"),
                &chunks,
                chunk_elems.max(1),
                &NoFilter,
                FilterMode::SizeAware,
            )
            .expect("collective write failed");
            fold_receipt(&mut ledger, &receipt);
            // No compression filter runs in this path: the NoFilter pass is
            // a staging copy, not a compressor launch.
            ledger.filter_calls = 0;
            ledger.measured_compute_s = 0.0;
            let elems = comm.allgather(staged_len);
            if rank == 0 {
                write_rank_elems(&writer, l, &elems).expect("rank_elems write failed");
            }
        }
        if rank == 0 {
            write_metadata(&writer, h, &[0, 0]).expect("metadata write failed");
        }
        comm.barrier();
        (ledger, prep_s)
    });

    writer.finish()?;
    let (ledgers, prep_seconds): (Vec<IoLedger>, Vec<f64>) = per_rank.into_iter().unzip();
    let stored = ledgers.iter().map(|l| l.bytes_written).sum();
    Ok(WriteReport {
        nranks,
        ledgers,
        prep_seconds,
        orig_bytes: h.snapshot_bytes(),
        stored_bytes: stored,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use amr_apps::prelude::*;

    use h5lite::testutil::TempDir;

    fn small_h() -> AmrHierarchy {
        // Seed pinned to a representative clumpy realization under the
        // vendored deterministic RNG (16³ is small enough that the
        // AMRIC-vs-baseline margin is seed-sensitive).
        let s = NyxScenario::new(7);
        let cfg = AmrRunConfig {
            coarse_dims: (16, 16, 16),
            max_grid_size: 8,
            blocking_factor: 8,
            nranks: 2,
            num_levels: 2,
            fine_fraction: 0.05,
            grid_eff: 0.7,
        };
        build_hierarchy(&s, &cfg, 0.0)
    }

    #[test]
    fn baseline_many_filter_calls() {
        let h = small_h();
        let dir = TempDir::new("amric-baseline-1d");
        let path = dir.file("b.h5l");
        let report = write_amrex_baseline(&path, &h, &BaselineConfig::new(1e-2)).unwrap();
        // 1024-element chunks → many compressor launches, the §4.4 effect.
        let calls: u64 = report.ledgers.iter().map(|l| l.filter_calls).sum();
        let total_elems = h.total_cells() * 6;
        assert!(
            calls >= total_elems / 1024,
            "calls {calls} vs elems {total_elems}"
        );
        assert!(report.compression_ratio() > 1.0);
    }

    #[test]
    fn nocomp_stores_everything() {
        let h = small_h();
        let dir = TempDir::new("amric-baseline-raw");
        let path = dir.file("raw.h5l");
        let report = write_nocomp(&path, &h).unwrap();
        assert_eq!(report.stored_bytes, h.snapshot_bytes());
        assert!((report.compression_ratio() - 1.0).abs() < 1e-9);
        let calls: u64 = report.ledgers.iter().map(|l| l.filter_calls).sum();
        assert_eq!(calls, 0);
    }

    #[test]
    fn baseline_beaten_by_amric_on_ratio() {
        let h = small_h();
        let dir = TempDir::new("amric-baseline-cmp");
        let p1 = dir.file("base.h5l");
        let p2 = dir.file("amric.h5l");
        let base = write_amrex_baseline(&p1, &h, &BaselineConfig::new(1e-2)).unwrap();
        let amric =
            crate::writer::write_amric(&p2, &h, &crate::config::AmricConfig::lr(1e-3), 8).unwrap();
        // The headline claim: AMRIC's CR beats AMReX's even at a 10×
        // tighter error bound.
        assert!(
            amric.compression_ratio() > base.compression_ratio(),
            "AMRIC {} vs AMReX {}",
            amric.compression_ratio(),
            base.compression_ratio()
        );
    }
}
