//! [`Codec`] implementations for every compressor family this crate hosts
//! — the full AMRIC pipeline plus the three offline comparators — and the
//! workspace-wide [`default_registry`] / [`decompress_auto`] dispatch.
//!
//! Together with `sz-codec`'s [`LrCodec`] and [`InterpCodec`], this makes
//! all six families pluggable behind one trait: a writer, bench, or test
//! can hold a `&dyn Codec` and swap compressors without touching call
//! sites, and any stream produced anywhere in the workspace decodes
//! through [`decompress_auto`] with no out-of-band context.

use crate::config::{AmricConfig, BaselineConfig};
use crate::pipeline::{
    compress_field_units_resolved_pooled, decompress_field_units, local_range, resolve_abs_eb,
    ResolvedBound,
};
use amr_mesh::IntVect;
use sz_codec::codec::{expect_envelope, write_envelope, FLAG_MULTI};
use sz_codec::prelude::*;
use sz_codec::wire::{Reader, Writer};

/// [`Codec`] adapter for the full AMRIC pipeline (reorganize + optimized
/// SZ, paper §3.1–3.2).
#[derive(Clone, Copy, Debug)]
pub struct AmricCodec {
    /// Pipeline configuration (algorithm, merge policy, ablations).
    pub cfg: AmricConfig,
    /// Unit-block edge of the level being compressed.
    pub unit_edge: usize,
    /// Absolute error bound override. `None` resolves the configured
    /// relative bound against the local value range of the units (offline
    /// studies); the in-situ writer passes the globally resolved bound.
    pub abs_eb: Option<f64>,
}

impl AmricCodec {
    /// Codec resolving the relative bound locally.
    pub fn new(cfg: AmricConfig, unit_edge: usize) -> Self {
        AmricCodec {
            cfg,
            unit_edge,
            abs_eb: None,
        }
    }

    /// Codec with a writer-resolved absolute bound.
    pub fn with_bound(cfg: AmricConfig, unit_edge: usize, abs_eb: f64) -> Self {
        AmricCodec {
            cfg,
            unit_edge,
            abs_eb: Some(abs_eb),
        }
    }

    /// Decode-only instance for registries (streams are self-describing;
    /// the compression configuration is irrelevant on decode).
    pub fn decoder() -> Self {
        AmricCodec::new(AmricConfig::lr(1e-3), 8)
    }
}

impl Codec for AmricCodec {
    fn id(&self) -> CodecId {
        CodecId::AmricPipeline
    }

    fn compress_into(&self, units: &[Buffer3], out: &mut Vec<u8>) -> CodecResult<StreamInfo> {
        // An explicit absolute bound overrides the policy (the writer has
        // already resolved it); otherwise resolve the configured policy
        // against the local value range.
        let bound = match self.abs_eb {
            Some(eb) => ResolvedBound::Fixed(eb),
            None if units.is_empty() => ResolvedBound::Fixed(1.0), // unused: empty marker
            None => ResolvedBound::from_policy(self.cfg.bound, self.cfg.rel_eb, local_range(units)),
        };
        Ok(compress_field_units_resolved_pooled(
            units,
            &self.cfg,
            self.unit_edge,
            bound,
            out,
        ))
    }

    fn decompress(&self, bytes: &[u8]) -> CodecResult<Vec<Buffer3>> {
        decompress_field_units(bytes)
    }
}

/// [`Codec`] adapter for the TAC comparator. Compression needs the unit
/// origins (TAC's Morton ordering is spatial); the permutation rides in
/// the stream, so decompression is self-contained.
#[derive(Clone, Debug)]
pub struct TacCodec {
    /// Value-range-relative error bound.
    pub rel_eb: f64,
    /// Unit-block origins, index-aligned with the units passed to
    /// `compress_into`. May be empty for decode-only instances.
    pub origins: Vec<IntVect>,
}

impl TacCodec {
    /// Codec for units at the given origins.
    pub fn new(rel_eb: f64, origins: Vec<IntVect>) -> Self {
        TacCodec { rel_eb, origins }
    }

    /// Decode-only instance for registries.
    pub fn decoder() -> Self {
        TacCodec::new(1e-3, Vec::new())
    }
}

impl Codec for TacCodec {
    fn id(&self) -> CodecId {
        CodecId::Tac
    }

    fn compress_into(&self, units: &[Buffer3], out: &mut Vec<u8>) -> CodecResult<StreamInfo> {
        if units.len() != self.origins.len() {
            return Err(CodecError::dims(format!(
                "TAC codec holds {} origins for {} units",
                self.origins.len(),
                units.len()
            )));
        }
        let start = out.len();
        crate::tac::tac_compress_into(units, &self.origins, self.rel_eb, out);
        Ok(StreamInfo {
            codec: CodecId::Tac,
            bytes: out.len() - start,
            units: units.len(),
            cells: units.iter().map(|u| u.dims().len()).sum(),
        })
    }

    fn decompress(&self, bytes: &[u8]) -> CodecResult<Vec<Buffer3>> {
        crate::tac::tac_decompress(bytes)
    }
}

/// [`Codec`] adapter for zMesh: all cells of all units are laid out in one
/// 1-D array ordered by the Morton code of their absolute position, then
/// compressed through SZ_L/R's 1-D path.
///
/// Two stream shapes share the zMesh codec id: the unit-level container
/// this codec writes ([`FLAG_MULTI`]: dims + origins + locality-ordered
/// values, fully self-contained), and the hierarchy-level stream of
/// [`crate::zmesh::zmesh_compress`] (no flags: positions are reproducible
/// from hierarchy metadata, so only the values are stored). `decompress`
/// accepts both; for the latter it returns the values as a single 1-D
/// buffer, since the spatial layout is not in the stream.
#[derive(Clone, Debug)]
pub struct ZmeshCodec {
    /// Value-range-relative error bound.
    pub rel_eb: f64,
    /// Unit-block origins, index-aligned with the units passed to
    /// `compress_into`. May be empty for decode-only instances.
    pub origins: Vec<IntVect>,
}

impl ZmeshCodec {
    /// Codec for units at the given origins.
    pub fn new(rel_eb: f64, origins: Vec<IntVect>) -> Self {
        ZmeshCodec { rel_eb, origins }
    }

    /// Decode-only instance for registries.
    pub fn decoder() -> Self {
        ZmeshCodec::new(1e-3, Vec::new())
    }
}

/// Largest coordinate a zMesh unit origin may carry. [`morton3`]
/// interleaves the low 21 bits of each coordinate, so origins are
/// restricted to the non-negative half of that domain: positions
/// (origin + extent) keep faithful locality keys, nothing wraps, and
/// `origin + extent` can never overflow. Enforced symmetrically at
/// compress and decompress time, so every accepted stream round-trips.
///
/// [`morton3`]: crate::tac::morton3
const ZMESH_MAX_ORIGIN: i64 = 1 << 20;

fn zmesh_origin_in_range(o: &IntVect) -> bool {
    (0..3).all(|axis| (0..=ZMESH_MAX_ORIGIN).contains(&o.get(axis)))
}

/// Morton-ordered `(key, unit, data index)` enumeration of all cells —
/// identical on the compress and decompress side, which is what makes the
/// unit-level stream self-contained.
fn zmesh_cell_order(dims: &[Dims3], origins: &[IntVect]) -> Vec<(u128, u32, u32)> {
    let mut cells = Vec::with_capacity(dims.iter().map(|d| d.len()).sum());
    for (u, (d, o)) in dims.iter().zip(origins).enumerate() {
        for k in 0..d.nz {
            for j in 0..d.ny {
                for i in 0..d.nx {
                    let p = IntVect::new(
                        o.get(0) + i as i64,
                        o.get(1) + j as i64,
                        o.get(2) + k as i64,
                    );
                    cells.push((crate::tac::morton3(&p), u as u32, d.idx(i, j, k) as u32));
                }
            }
        }
    }
    // Stable sort: duplicate keys (overlapping units) keep input order on
    // both sides.
    cells.sort_by_key(|c| c.0);
    cells
}

impl Codec for ZmeshCodec {
    fn id(&self) -> CodecId {
        CodecId::Zmesh
    }

    fn compress_into(&self, units: &[Buffer3], out: &mut Vec<u8>) -> CodecResult<StreamInfo> {
        if units.len() != self.origins.len() {
            return Err(CodecError::dims(format!(
                "zMesh codec holds {} origins for {} units",
                self.origins.len(),
                units.len()
            )));
        }
        if !self.origins.iter().all(zmesh_origin_in_range) {
            return Err(CodecError::BadParameter {
                what: "unit origin out of range",
            });
        }
        let start = out.len();
        let mut w = Writer::from_vec(std::mem::take(out));
        write_envelope(&mut w, CodecId::Zmesh, crate::zmesh::VERSION, FLAG_MULTI);
        w.put_u32(units.len() as u32);
        for (u, o) in units.iter().zip(&self.origins) {
            let d = u.dims();
            w.put_u32(d.nx as u32);
            w.put_u32(d.ny as u32);
            w.put_u32(d.nz as u32);
            for axis in 0..3 {
                w.put_u64(o.get(axis) as u64);
            }
        }
        let cells = if units.is_empty() {
            0
        } else {
            let dims: Vec<Dims3> = units.iter().map(|u| u.dims()).collect();
            let order = zmesh_cell_order(&dims, &self.origins);
            let values: Vec<f64> = order
                .iter()
                .map(|&(_, u, idx)| units[u as usize].data()[idx as usize])
                .collect();
            let abs_eb = resolve_abs_eb(units, self.rel_eb);
            w.put_raw(&lr::compress_1d(&values, abs_eb));
            values.len()
        };
        *out = w.into_bytes();
        Ok(StreamInfo {
            codec: CodecId::Zmesh,
            bytes: out.len() - start,
            units: units.len(),
            cells,
        })
    }

    fn decompress(&self, bytes: &[u8]) -> CodecResult<Vec<Buffer3>> {
        let env = expect_envelope(bytes, CodecId::Zmesh, crate::zmesh::VERSION)?;
        let mut r = Reader::new(&bytes[env.payload_offset..]);
        if env.flags & FLAG_MULTI == 0 {
            // Hierarchy-level stream: the layout is not in the stream, so
            // hand back the locality-ordered values as one 1-D buffer.
            let n = r.get_u64()? as usize;
            let buf = lr::decompress(r.get_block()?)?;
            if buf.dims().len() != n {
                return Err(CodecError::dims("zMesh length mismatch"));
            }
            return Ok(vec![buf]);
        }
        let nunits = r.get_u32()? as usize;
        // Each unit header is 3 × u32 + 3 × u64.
        r.check_count(nunits, 36)?;
        let mut dims = Vec::with_capacity(nunits);
        let mut origins = Vec::with_capacity(nunits);
        let mut total: u128 = 0;
        for _ in 0..nunits {
            let nx = r.get_u32()? as usize;
            let ny = r.get_u32()? as usize;
            let nz = r.get_u32()? as usize;
            if nx == 0 || ny == 0 || nz == 0 {
                return Err(CodecError::dims(format!(
                    "degenerate unit dims {nx}x{ny}x{nz}"
                )));
            }
            total += nx as u128 * ny as u128 * nz as u128;
            dims.push(Dims3::new(nx, ny, nz));
            let o = IntVect::new(
                r.get_u64()? as i64,
                r.get_u64()? as i64,
                r.get_u64()? as i64,
            );
            // Reject implausible origins so `origin + extent` cannot
            // overflow in the Morton enumeration — the same bound the
            // compressor enforces, so every produced stream decodes.
            if !zmesh_origin_in_range(&o) {
                return Err(CodecError::corrupt("implausible unit origin"));
            }
            origins.push(o);
        }
        if nunits == 0 {
            return Ok(Vec::new());
        }
        // No cells-vs-remaining-bytes plausibility check here: `r` still
        // holds lossless-compressed data (constant fields legitimately
        // pack far below one bit per cell), and the SZ layer applies its
        // own post-expansion guards. Nothing allocates from `total`
        // until it has been matched against the actual decoded length.
        let values = lr::decompress(r.get_raw(r.remaining())?)?.into_vec();
        if values.len() as u128 != total {
            return Err(CodecError::dims(format!(
                "zMesh stream holds {} values for {total} cells",
                values.len()
            )));
        }
        let mut units: Vec<Buffer3> = dims.iter().map(|&d| Buffer3::zeros(d)).collect();
        for (&(_, u, idx), &v) in zmesh_cell_order(&dims, &origins).iter().zip(&values) {
            units[u as usize].data_mut()[idx as usize] = v;
        }
        Ok(units)
    }
}

/// [`Codec`] adapter for the AMReX baseline: the units are flattened in
/// input order and pushed through 1-D SZ_L/R in small standard-mode
/// chunks, one compressor call per chunk with a chunk-local REL bound —
/// the §2.3 behaviour AMRIC improves on, as an offline stream format.
#[derive(Clone, Copy, Debug)]
pub struct BaselineCodec {
    /// Baseline configuration (relative bound + chunk size).
    pub cfg: BaselineConfig,
}

/// Baseline payload format version (rides in the envelope header).
const BASELINE_VERSION: u8 = 1;

impl BaselineCodec {
    /// Build from a configuration.
    pub fn new(cfg: BaselineConfig) -> Self {
        BaselineCodec { cfg }
    }

    /// Decode-only instance for registries.
    pub fn decoder() -> Self {
        BaselineCodec::new(BaselineConfig::new(1e-2))
    }
}

impl Codec for BaselineCodec {
    fn id(&self) -> CodecId {
        CodecId::AmrexBaseline
    }

    fn compress_into(&self, units: &[Buffer3], out: &mut Vec<u8>) -> CodecResult<StreamInfo> {
        let start = out.len();
        let mut w = Writer::from_vec(std::mem::take(out));
        write_envelope(&mut w, CodecId::AmrexBaseline, BASELINE_VERSION, 0);
        w.put_u32(units.len() as u32);
        let mut flat = Vec::with_capacity(units.iter().map(|u| u.dims().len()).sum());
        for u in units {
            let d = u.dims();
            w.put_u32(d.nx as u32);
            w.put_u32(d.ny as u32);
            w.put_u32(d.nz as u32);
            flat.extend_from_slice(u.data());
        }
        let chunk_elems = self.cfg.chunk_elems.max(1);
        w.put_u32(flat.len().div_ceil(chunk_elems) as u32);
        for chunk in flat.chunks(chunk_elems) {
            // H5Z-SZ REL semantics: the bound resolves per chunk.
            let (lo, hi) = chunk
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, u), &v| {
                    (l.min(v), u.max(v))
                });
            let abs_eb = absolute_bound(self.cfg.rel_eb, if hi > lo { hi - lo } else { 0.0 });
            w.put_block(&lr::compress_1d(chunk, abs_eb));
        }
        *out = w.into_bytes();
        Ok(StreamInfo {
            codec: CodecId::AmrexBaseline,
            bytes: out.len() - start,
            units: units.len(),
            cells: flat.len(),
        })
    }

    fn decompress(&self, bytes: &[u8]) -> CodecResult<Vec<Buffer3>> {
        let env = expect_envelope(bytes, CodecId::AmrexBaseline, BASELINE_VERSION)?;
        let mut r = Reader::new(&bytes[env.payload_offset..]);
        let nunits = r.get_u32()? as usize;
        // Each unit header is 3 × u32.
        r.check_count(nunits, 12)?;
        let mut dims = Vec::with_capacity(nunits);
        let mut total: u128 = 0;
        for _ in 0..nunits {
            let nx = r.get_u32()? as usize;
            let ny = r.get_u32()? as usize;
            let nz = r.get_u32()? as usize;
            if nx == 0 || ny == 0 || nz == 0 {
                return Err(CodecError::dims(format!(
                    "degenerate unit dims {nx}x{ny}x{nz}"
                )));
            }
            total += nx as u128 * ny as u128 * nz as u128;
            dims.push(Dims3::new(nx, ny, nz));
        }
        let nchunks = r.get_u32()? as usize;
        r.check_count(nchunks, 8)?;
        // No cells-vs-remaining-bytes plausibility check: the chunk
        // payloads are lossless-compressed (constant fields pack far
        // below one bit per cell) and each chunk decode is guarded
        // internally. The capacity hint is capped so a corrupted `total`
        // cannot drive a huge upfront allocation — the vec grows only
        // with actually decoded data.
        let mut flat = Vec::with_capacity((total as usize).min(1 << 24));
        for _ in 0..nchunks {
            flat.extend(lr::decompress(r.get_block()?)?.into_vec());
        }
        if flat.len() as u128 != total {
            return Err(CodecError::dims(format!(
                "baseline stream holds {} values for {total} cells",
                flat.len()
            )));
        }
        let mut units = Vec::with_capacity(nunits);
        let mut off = 0usize;
        for d in dims {
            let n = d.len();
            units.push(Buffer3::from_vec(d, flat[off..off + n].to_vec()));
            off += n;
        }
        Ok(units)
    }
}

/// Registry covering all seven codec families of the workspace: SZ_L/R,
/// SZ_Interp, the AMRIC pipeline, TAC, zMesh, the AMReX baseline, and
/// temporal delta streams. The temporal decoder registered here carries
/// no reference snapshot: it decodes any self-contained (spatial-only)
/// temporal stream, and referenced streams fail with a typed error
/// naming the missing reference — re-register
/// `TemporalCodec::decoder_with(reference)` (later registration wins) to
/// resolve those too.
pub fn default_registry() -> CodecRegistry {
    let mut reg = CodecRegistry::sz_only();
    reg.register(Box::new(AmricCodec::decoder()))
        .register(Box::new(TacCodec::decoder()))
        .register(Box::new(ZmeshCodec::decoder()))
        .register(Box::new(BaselineCodec::decoder()))
        .register(Box::new(sz_codec::temporal::TemporalCodec::decoder()));
    reg
}

/// Decode any envelope stream produced anywhere in the workspace,
/// dispatching on the codec id in the header.
pub fn decompress_auto(bytes: &[u8]) -> CodecResult<Vec<Buffer3>> {
    static REGISTRY: std::sync::OnceLock<CodecRegistry> = std::sync::OnceLock::new();
    REGISTRY
        .get_or_init(default_registry)
        .decompress_auto(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn units(n: usize, edge: usize) -> Vec<Buffer3> {
        (0..n)
            .map(|u| {
                let mut b = Buffer3::zeros(Dims3::cube(edge));
                b.fill_with(|i, j, k| {
                    (u as f64 * 0.9).sin() * 4.0
                        + ((i + 2 * j) as f64 * 0.2).cos()
                        + k as f64 * 0.05
                });
                b
            })
            .collect()
    }

    fn origins(n: usize, edge: usize) -> Vec<IntVect> {
        (0..n)
            .map(|u| {
                let (u, e) = (u as i64, edge as i64);
                IntVect::new((u % 2) * e, ((u / 2) % 2) * e, (u / 4) * e)
            })
            .collect()
    }

    #[test]
    fn zmesh_unit_codec_roundtrip() {
        let u = units(6, 8);
        let codec = ZmeshCodec::new(1e-3, origins(6, 8));
        let bytes = codec.compress(&u).unwrap();
        let back = codec.decompress(&bytes).unwrap();
        let abs = resolve_abs_eb(&u, 1e-3);
        assert_eq!(back.len(), u.len());
        for (o, b) in u.iter().zip(&back) {
            assert_eq!(o.dims(), b.dims());
            let s = ErrorStats::compare(o.data(), b.data());
            assert!(s.max_abs_err <= abs * (1.0 + 1e-9), "{}", s.max_abs_err);
        }
    }

    #[test]
    fn baseline_codec_roundtrip_mixed_dims() {
        let mut u = units(3, 8);
        let mut odd = Buffer3::zeros(Dims3::new(5, 7, 3));
        odd.fill_with(|i, j, k| (i * j + k) as f64 * 0.1);
        u.push(odd);
        let codec = BaselineCodec::new(BaselineConfig::new(1e-3));
        let bytes = codec.compress(&u).unwrap();
        let back = codec.decompress(&bytes).unwrap();
        assert_eq!(back.len(), u.len());
        for (o, b) in u.iter().zip(&back) {
            assert_eq!(o.dims(), b.dims());
            let abs = 1e-3 * o.data().len() as f64; // loose: per-chunk ranges vary
            let s = ErrorStats::compare(o.data(), b.data());
            assert!(s.max_abs_err <= abs, "{}", s.max_abs_err);
        }
    }

    #[test]
    fn empty_units_roundtrip_through_every_family() {
        let codecs: Vec<Box<dyn Codec>> = vec![
            Box::new(LrCodec::default()),
            Box::new(InterpCodec::default()),
            Box::new(AmricCodec::decoder()),
            Box::new(TacCodec::decoder()),
            Box::new(ZmeshCodec::decoder()),
            Box::new(BaselineCodec::decoder()),
        ];
        for codec in &codecs {
            let bytes = codec.compress(&[]).unwrap();
            assert!(
                codec.decompress(&bytes).unwrap().is_empty(),
                "{:?}",
                codec.id()
            );
            assert!(
                decompress_auto(&bytes).unwrap().is_empty(),
                "{:?}",
                codec.id()
            );
        }
    }

    #[test]
    fn constant_units_roundtrip_through_every_family() {
        // Regression: constant data packs far below one bit per cell, so
        // any cells-vs-compressed-bytes plausibility guard run before
        // lossless expansion rejects these perfectly valid streams.
        let u = vec![Buffer3::from_vec(Dims3::cube(8), vec![2.5; 512]); 8];
        let codecs: Vec<Box<dyn Codec>> = vec![
            Box::new(LrCodec::default()),
            Box::new(InterpCodec::default()),
            Box::new(AmricCodec::decoder()),
            Box::new(TacCodec::new(1e-3, origins(8, 8))),
            Box::new(ZmeshCodec::new(1e-3, origins(8, 8))),
            Box::new(BaselineCodec::decoder()),
        ];
        for codec in &codecs {
            let stream = codec.compress(&u).unwrap();
            let back =
                decompress_auto(&stream).unwrap_or_else(|e| panic!("{}: {e}", codec.id().name()));
            assert_eq!(back.len(), u.len(), "{}", codec.id().name());
            for (o, b) in u.iter().zip(&back) {
                assert_eq!(o.dims(), b.dims());
                // Constant-field REL fallback: bound is rel_eb itself.
                for (&x, &y) in o.data().iter().zip(b.data()) {
                    assert!((x - y).abs() <= 1e-3, "{}", codec.id().name());
                }
            }
        }
    }

    #[test]
    fn zmesh_out_of_range_origin_rejected_at_compress() {
        // Compress and decompress enforce the same origin bound, so the
        // codec never produces a stream it cannot decode.
        let codec = ZmeshCodec::new(1e-3, vec![IntVect::new(1i64 << 41, 0, 0)]);
        let err = codec.compress(&units(1, 4)).unwrap_err();
        assert!(matches!(err, CodecError::BadParameter { .. }), "{err:?}");
    }

    #[test]
    fn zmesh_implausible_origin_is_error_not_overflow() {
        // Regression: a corrupt multi stream carrying a huge origin must
        // fail typed, not overflow `origin + extent` in the Morton
        // enumeration (debug builds panicked before the origin check).
        let codec = ZmeshCodec::new(1e-3, vec![IntVect::new(0, 0, 0)]);
        let u = units(1, 4);
        let mut stream = codec.compress(&u).unwrap();
        // Unit header starts after envelope (8) + count (4) + dims (12):
        // overwrite origin.x with i64::MAX.
        stream[24..32].copy_from_slice(&(i64::MAX as u64).to_le_bytes());
        let err = codec.decompress(&stream).unwrap_err();
        assert!(matches!(err, CodecError::Corrupt { .. }), "{err:?}");
    }

    #[test]
    fn mismatched_origin_count_is_error() {
        let u = units(3, 8);
        assert!(matches!(
            TacCodec::new(1e-3, Vec::new()).compress(&u),
            Err(CodecError::DimsMismatch { .. })
        ));
        assert!(matches!(
            ZmeshCodec::new(1e-3, Vec::new()).compress(&u),
            Err(CodecError::DimsMismatch { .. })
        ));
    }
}
