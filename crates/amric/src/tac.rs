//! TAC comparator (Wang et al., HPDC '22) — the offline adaptive-3-D
//! pre-processing baseline of the paper's Fig. 16.
//!
//! TAC improves zMesh by partitioning sparse AMR levels into spatially
//! compact groups, padding them into regular 3-D regions, and handing each
//! region to stock SZ_L/R *as a black box*. Two consequences the paper
//! exploits when comparing against AMRIC: every group is compressed in a
//! separate SZ call (per-group Huffman trees — encoding overhead), and
//! inside a group the blocks are linearly merged (Lorenzo leaks across
//! block boundaries). AMRIC optimizes both away with SLE and the adaptive
//! block size.

use amr_mesh::IntVect;
use sz_codec::codec::{expect_envelope, write_envelope};
use sz_codec::prelude::*;
use sz_codec::wire::{Reader, Writer};

/// TAC payload format version (rides in the envelope header).
const VERSION: u8 = 1;

/// Units per spatial group (TAC's partition granularity).
const GROUP: usize = 8;

/// Interleave the low 21 bits of each coordinate into a Morton code —
/// TAC's spatial-proximity ordering.
pub fn morton3(p: &IntVect) -> u128 {
    let spread = |v: i64| -> u128 {
        let mut out = 0u128;
        for b in 0..21 {
            out |= (((v as u64 >> b) & 1) as u128) << (3 * b);
        }
        out
    };
    spread(p.get(0)) | spread(p.get(1)) << 1 | spread(p.get(2)) << 2
}

/// Compress unit blocks TAC-style: Morton-sort by origin, group, linearly
/// merge each group, stock SZ_L/R per group.
pub fn tac_compress(units: &[Buffer3], origins: &[IntVect], rel_eb: f64) -> Vec<u8> {
    let mut out = Vec::new();
    tac_compress_into(units, origins, rel_eb, &mut out);
    out
}

/// Compress unit blocks TAC-style, **appending** the stream to `out`
/// (the buffer-reusing variant of [`tac_compress`]).
pub fn tac_compress_into(units: &[Buffer3], origins: &[IntVect], rel_eb: f64, out: &mut Vec<u8>) {
    assert_eq!(units.len(), origins.len());
    let mut w = Writer::from_vec(std::mem::take(out));
    write_envelope(&mut w, CodecId::Tac, VERSION, 0);
    w.put_u32(units.len() as u32);
    if units.is_empty() {
        *out = w.into_bytes();
        return;
    }
    let abs_eb = crate::pipeline::resolve_abs_eb(units, rel_eb);
    // Spatial ordering.
    let mut order: Vec<usize> = (0..units.len()).collect();
    order.sort_by_key(|&i| morton3(&origins[i]));
    // Record the permutation so decompression can restore input order.
    for &i in &order {
        w.put_u32(i as u32);
    }
    // Group consecutive (spatially adjacent) units; groups with mixed
    // footprints split into singletons (TAC pads instead; merging only
    // uniform footprints is the equivalent regularization).
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for chunk in order.chunks(GROUP) {
        let mut current: Vec<usize> = Vec::new();
        for &i in chunk {
            let matches = current.first().is_none_or(|&f| {
                let (a, b) = (units[f].dims(), units[i].dims());
                a.nx == b.nx && a.ny == b.ny
            });
            if matches {
                current.push(i);
            } else {
                groups.push(std::mem::take(&mut current));
                current.push(i);
            }
        }
        if !current.is_empty() {
            groups.push(current);
        }
    }
    w.put_u32(groups.len() as u32);
    let cfg = LrConfig::new(abs_eb); // stock 6³, black box
    for g in &groups {
        w.put_u32(g.len() as u32);
        let members: Vec<Buffer3> = g.iter().map(|&i| units[i].clone()).collect();
        let (merged, extents) = crate::reorganize::linear_merge(&members);
        for e in &extents {
            w.put_u32(*e as u32);
        }
        // Separate SZ call per group — the black-box behaviour.
        w.put_block(&lr::compress(&merged, &cfg));
    }
    *out = w.into_bytes();
}

/// Decompress a TAC stream back to units in the original input order.
pub fn tac_decompress(bytes: &[u8]) -> CodecResult<Vec<Buffer3>> {
    let env = expect_envelope(bytes, CodecId::Tac, VERSION)?;
    let mut r = Reader::new(&bytes[env.payload_offset..]);
    let n = r.get_u32()? as usize;
    if n == 0 {
        return Ok(Vec::new());
    }
    // Each permutation entry is a u32; reject counts the stream can't hold.
    r.check_count(n, 4)?;
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        order.push(r.get_u32()? as usize);
    }
    let ngroups = r.get_u32()? as usize;
    let mut sorted_units = Vec::with_capacity(n);
    for _ in 0..ngroups {
        let glen = r.get_u32()? as usize;
        r.check_count(glen, 4)?;
        let mut extents = Vec::with_capacity(glen);
        for _ in 0..glen {
            let e = r.get_u32()? as usize;
            if e == 0 {
                return Err(CodecError::dims("zero unit extent in TAC group"));
            }
            extents.push(e);
        }
        let merged = lr::decompress(r.get_block()?)?;
        // Validate before linear_split, whose extent-coverage check is an
        // assert (its callers are trusted; the wire format is not).
        if extents.iter().sum::<usize>() != merged.dims().nz {
            return Err(CodecError::dims("TAC group extents mismatch"));
        }
        sorted_units.extend(crate::reorganize::linear_split(&merged, &extents));
    }
    if sorted_units.len() != n {
        return Err(CodecError::dims("TAC unit count mismatch"));
    }
    // Invert the permutation.
    let mut out: Vec<Option<Buffer3>> = vec![None; n];
    for (buf, &idx) in sorted_units.into_iter().zip(&order) {
        if idx >= n || out[idx].is_some() {
            return Err(CodecError::corrupt("bad TAC permutation"));
        }
        out[idx] = Some(buf);
    }
    Ok(out
        .into_iter()
        .map(|o| o.expect("permutation checked"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_units(n: usize) -> (Vec<Buffer3>, Vec<IntVect>) {
        let units: Vec<Buffer3> = (0..n)
            .map(|u| {
                let mut b = Buffer3::zeros(Dims3::cube(8));
                b.fill_with(|i, j, k| {
                    (u as f64 * 0.7).sin() * 5.0 + ((i + 2 * j + 3 * k) as f64 * 0.1).cos()
                });
                b
            })
            .collect();
        let origins: Vec<IntVect> = (0..n)
            .map(|u| {
                let u = u as i64;
                IntVect::new((u % 4) * 8, ((u / 4) % 4) * 8, (u / 16) * 8)
            })
            .collect();
        (units, origins)
    }

    #[test]
    fn morton_orders_locally() {
        // Points in the same octant sort near each other.
        let a = morton3(&IntVect::new(0, 0, 0));
        let b = morton3(&IntVect::new(1, 1, 1));
        let c = morton3(&IntVect::new(16, 16, 16));
        assert!(a < b && b < c);
    }

    #[test]
    fn roundtrip_within_bound() {
        let (units, origins) = sample_units(13);
        let bytes = tac_compress(&units, &origins, 1e-3);
        let back = tac_decompress(&bytes).unwrap();
        assert_eq!(back.len(), units.len());
        let abs = crate::pipeline::resolve_abs_eb(&units, 1e-3);
        for (o, b) in units.iter().zip(&back) {
            assert_eq!(o.dims(), b.dims());
            let s = ErrorStats::compare(o.data(), b.data());
            assert!(s.max_abs_err <= abs * (1.0 + 1e-9));
        }
    }

    #[test]
    fn empty_input() {
        let bytes = tac_compress(&[], &[], 1e-3);
        assert!(tac_decompress(&bytes).unwrap().is_empty());
    }

    #[test]
    fn amric_beats_tac_on_size() {
        // The Fig. 16 relationship, at fixed error bound: AMRIC's SLE +
        // single shared encoding out-compresses TAC's per-group black-box
        // calls.
        let (units, origins) = sample_units(40);
        let tac_len = tac_compress(&units, &origins, 1e-3).len();
        let amric_len =
            crate::pipeline::compress_field_units(&units, &crate::config::AmricConfig::lr(1e-3), 8)
                .len();
        assert!(
            amric_len < tac_len,
            "AMRIC {amric_len} should beat TAC {tac_len}"
        );
    }
}
