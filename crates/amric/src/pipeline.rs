//! The AMRIC compression pipeline for one (rank, level, field) unit-block
//! set: reorganize (§3.1) → optimized SZ (§3.2) → self-describing stream.

use crate::config::{AmricConfig, BoundPolicy, MergePolicy};
use crate::preprocess::unit_activity;
use crate::reorganize::{cluster_pack, cluster_unpack, linear_merge, linear_split, ClusterGrid};
use sz_codec::codec::{expect_envelope, write_envelope, StreamInfo, FLAG_UNIT_BOUNDS};
use sz_codec::prelude::*;
use sz_codec::wire::{Reader, Writer};

/// AMRIC pipeline payload format version (rides in the envelope header).
const VERSION: u8 = 1;

/// Reusable compression scratch for the pipeline hot path: holds the
/// SZ_L/R quantization-stream buffers so repeated `*_into` calls stop
/// paying per-call allocations. One per writer rank is enough.
#[derive(Default)]
pub struct AmricScratch {
    lr: LrScratch,
}

impl std::fmt::Debug for AmricScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("AmricScratch { .. }")
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    LrSle = 0,
    LrLinearMerge = 1,
    InterpLinear = 2,
    InterpCluster = 3,
    /// Per-unit adaptive bounds: two LR-SLE substreams (tight group,
    /// loose group) plus a group table mapping units back to input order.
    Adaptive = 4,
    Empty = 255,
}

impl Mode {
    fn from_u8(v: u8) -> CodecResult<Mode> {
        Ok(match v {
            0 => Mode::LrSle,
            1 => Mode::LrLinearMerge,
            2 => Mode::InterpLinear,
            3 => Mode::InterpCluster,
            4 => Mode::Adaptive,
            255 => Mode::Empty,
            _ => return Err(CodecError::BadMode { found: v }),
        })
    }
}

/// An error bound resolved to absolute values — what the writer hands the
/// pipeline after scaling the configured relative policy by the global
/// field range. `Fixed` takes the exact pre-policy code path (streams stay
/// byte-identical to earlier releases, pinned by the golden corpus);
/// `Adaptive` selects [the per-unit mode](BoundPolicy::GradientAdaptive).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ResolvedBound {
    /// One absolute bound for every unit.
    Fixed(f64),
    /// Absolute tight/loose bounds; each unit gets one or the other by
    /// gradient activity.
    Adaptive {
        /// Absolute bound for high-gradient (rough) units.
        tight: f64,
        /// Absolute bound for smooth units (`>= tight`).
        loose: f64,
    },
}

impl ResolvedBound {
    /// Resolve a configured [`BoundPolicy`] against a known value range
    /// (range 0 falls back to the relative bound itself, like
    /// [`absolute_bound`]).
    pub fn from_policy(policy: BoundPolicy, rel_eb: f64, range: f64) -> ResolvedBound {
        match policy {
            BoundPolicy::Fixed => ResolvedBound::Fixed(absolute_bound(rel_eb, range)),
            BoundPolicy::GradientAdaptive { tight, loose } => ResolvedBound::Adaptive {
                tight: absolute_bound(tight, range),
                loose: absolute_bound(loose, range),
            },
        }
    }

    /// The loosest absolute bound any unit may see — the worst-case error
    /// guarantee of the stream.
    pub fn loose(&self) -> f64 {
        match *self {
            ResolvedBound::Fixed(b) => b,
            ResolvedBound::Adaptive { loose, .. } => loose,
        }
    }
}

/// Split units into bound groups: `true` = rough (tight bound). A unit is
/// rough when its [`unit_activity`] exceeds the mean activity of the
/// chunk, so constant or uniformly smooth chunks classify all-loose.
/// Deterministic in the unit data alone — the parallel write path stays
/// byte-identical to serial with no extra plumbing.
fn classify_units(units: &[Buffer3]) -> Vec<bool> {
    let scores: Vec<f64> = units.iter().map(unit_activity).collect();
    let mean = scores.iter().sum::<f64>() / scores.len() as f64;
    scores.iter().map(|&s| s > mean).collect()
}

/// Can the units be merged along z (uniform x/y footprint)?
fn uniform_xy(units: &[Buffer3]) -> bool {
    let d0 = units[0].dims();
    units
        .iter()
        .all(|u| u.dims().nx == d0.nx && u.dims().ny == d0.ny)
}

/// Are all units identical cubes?
fn uniform_cubes(units: &[Buffer3]) -> bool {
    let d0 = units[0].dims();
    d0.nx == d0.ny && d0.ny == d0.nz && units.iter().all(|u| u.dims() == d0)
}

/// Resolve the field's absolute error bound from the rank-local value
/// range across all units (the paper's per-rank range-relative bounds,
/// §4.3).
///
/// **Constant-valued fields** (value range 0 — e.g. a quiet rank whose
/// units all hold one value) fall back to `rel_eb` itself as the absolute
/// bound, matching [`absolute_bound`]. REL bounds therefore stay
/// well-defined at the API boundary: the quantizer receives a positive
/// bound, the constant field round-trips within `rel_eb`, and the in-situ
/// writer resolves its global bound under the same contract.
pub fn resolve_abs_eb(units: &[Buffer3], rel_eb: f64) -> f64 {
    absolute_bound(rel_eb, local_range(units))
}

/// Value range across a unit set (0.0 for constant or empty sets).
pub(crate) fn local_range(units: &[Buffer3]) -> f64 {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for u in units {
        let (l, h) = u.min_max();
        lo = lo.min(l);
        hi = hi.max(h);
    }
    if hi > lo {
        hi - lo
    } else {
        0.0
    }
}

/// Compress one field's unit blocks under the given configuration,
/// resolving the relative bound against the *local* value range of the
/// units (offline single-rank studies). The in-situ writer resolves the
/// bound globally across ranks and calls
/// [`compress_field_units_with_bound`] instead.
pub fn compress_field_units(units: &[Buffer3], cfg: &AmricConfig, unit_edge: usize) -> Vec<u8> {
    let bound = if units.is_empty() {
        ResolvedBound::Fixed(1.0) // unused: the empty marker short-circuits
    } else {
        ResolvedBound::from_policy(cfg.bound, cfg.rel_eb, local_range(units))
    };
    compress_field_units_resolved(units, cfg, unit_edge, bound)
}

/// Compress one field's unit blocks with an explicit resolved bound —
/// the policy-aware generalization of
/// [`compress_field_units_with_bound`]. `Fixed` takes the exact legacy
/// code path (byte-identical streams); `Adaptive` writes the per-unit
/// bound mode.
pub fn compress_field_units_resolved(
    units: &[Buffer3],
    cfg: &AmricConfig,
    unit_edge: usize,
    bound: ResolvedBound,
) -> Vec<u8> {
    let mut out = Vec::new();
    AMRIC_POOL.with(|s| {
        compress_field_units_resolved_into(
            units,
            cfg,
            unit_edge,
            bound,
            &mut s.borrow_mut(),
            &mut out,
        )
    });
    out
}

/// Like [`compress_field_units_resolved_into`] but reusing a thread-local
/// scratch — for `&self` contexts that cannot thread a scratch through.
pub fn compress_field_units_resolved_pooled(
    units: &[Buffer3],
    cfg: &AmricConfig,
    unit_edge: usize,
    bound: ResolvedBound,
    out: &mut Vec<u8>,
) -> StreamInfo {
    AMRIC_POOL.with(|s| {
        compress_field_units_resolved_into(units, cfg, unit_edge, bound, &mut s.borrow_mut(), out)
    })
}

/// Policy-dispatching compress core: `Fixed` forwards to the untouched
/// legacy path ([`compress_field_units_with_bound_into`]); `Adaptive`
/// appends the `Mode::Adaptive` stream. Both append to `out` and reuse
/// `scratch`.
pub fn compress_field_units_resolved_into(
    units: &[Buffer3],
    cfg: &AmricConfig,
    unit_edge: usize,
    bound: ResolvedBound,
    scratch: &mut AmricScratch,
    out: &mut Vec<u8>,
) -> StreamInfo {
    match bound {
        ResolvedBound::Fixed(abs_eb) => {
            compress_field_units_with_bound_into(units, cfg, unit_edge, abs_eb, scratch, out)
        }
        // An empty chunk carries no bound: the plain empty marker is the
        // canonical stream either way.
        ResolvedBound::Adaptive { .. } if units.is_empty() => {
            compress_field_units_with_bound_into(units, cfg, unit_edge, 1.0, scratch, out)
        }
        ResolvedBound::Adaptive { tight, loose } => {
            compress_adaptive_into(units, cfg, unit_edge, tight, loose, scratch, out)
        }
    }
}

/// Write the [`Mode::Adaptive`] stream: group table + two LR-SLE
/// substreams (tight group length-prefixed, loose group to end of
/// stream). Adaptive always sub-codes with LR-SLE — it handles any unit
/// shapes and keeps per-unit bounds independent — regardless of the
/// configured algorithm.
fn compress_adaptive_into(
    units: &[Buffer3],
    cfg: &AmricConfig,
    unit_edge: usize,
    tight: f64,
    loose: f64,
    scratch: &mut AmricScratch,
    out: &mut Vec<u8>,
) -> StreamInfo {
    let start = out.len();
    let rough = classify_units(units);
    let mut w = Writer::from_vec(std::mem::take(out));
    write_envelope(&mut w, CodecId::AmricPipeline, VERSION, FLAG_UNIT_BOUNDS);
    w.put_u8(Mode::Adaptive as u8);
    w.put_u32(units.len() as u32);
    w.put_f64(tight);
    w.put_f64(loose);
    for &r in &rough {
        w.put_u8(r as u8);
    }
    let block_size = cfg.sz_block_size(unit_edge);
    let tight_units: Vec<&Buffer3> = units
        .iter()
        .zip(&rough)
        .filter_map(|(u, &r)| r.then_some(u))
        .collect();
    let loose_units: Vec<&Buffer3> = units
        .iter()
        .zip(&rough)
        .filter_map(|(u, &r)| (!r).then_some(u))
        .collect();
    // Tight substream, u32-length-prefixed so the loose one can ride raw
    // to the end of the stream. The length is patched in after the
    // substream is appended.
    let len_pos = w.buf_mut().len();
    w.put_u32(0);
    if !tight_units.is_empty() {
        let lr_cfg = LrConfig::new(tight).with_block_size(block_size);
        lr::compress_domains_into(&tight_units, &lr_cfg, &mut scratch.lr, w.buf_mut());
    }
    let tight_len = (w.buf_mut().len() - len_pos - 4) as u32;
    w.buf_mut()[len_pos..len_pos + 4].copy_from_slice(&tight_len.to_le_bytes());
    if !loose_units.is_empty() {
        let lr_cfg = LrConfig::new(loose).with_block_size(block_size);
        lr::compress_domains_into(&loose_units, &lr_cfg, &mut scratch.lr, w.buf_mut());
    }
    *out = w.into_bytes();
    StreamInfo {
        codec: CodecId::AmricPipeline,
        bytes: out.len() - start,
        units: units.len(),
        cells: units.iter().map(|u| u.dims().len()).sum(),
    }
}

/// Compress one field's unit blocks with an explicit absolute error bound
/// (the bound the writer resolved from the global field range).
pub fn compress_field_units_with_bound(
    units: &[Buffer3],
    cfg: &AmricConfig,
    unit_edge: usize,
    abs_eb: f64,
) -> Vec<u8> {
    let mut out = Vec::new();
    compress_field_units_with_bound_pooled(units, cfg, unit_edge, abs_eb, &mut out);
    out
}

thread_local! {
    /// Per-thread (= per-rank) scratch pool backing the `&self` entry
    /// points that cannot hold a scratch of their own.
    static AMRIC_POOL: std::cell::RefCell<AmricScratch> =
        std::cell::RefCell::new(AmricScratch::default());
}

/// Like [`compress_field_units_with_bound_into`] but reusing a
/// thread-local scratch — for `&self` contexts (the `Codec` impl) that
/// cannot thread an explicit [`AmricScratch`] through.
pub fn compress_field_units_with_bound_pooled(
    units: &[Buffer3],
    cfg: &AmricConfig,
    unit_edge: usize,
    abs_eb: f64,
    out: &mut Vec<u8>,
) -> StreamInfo {
    AMRIC_POOL.with(|s| {
        compress_field_units_with_bound_into(
            units,
            cfg,
            unit_edge,
            abs_eb,
            &mut s.borrow_mut(),
            out,
        )
    })
}

/// Compress one field's unit blocks with an explicit absolute error
/// bound, **appending** the stream to `out` and reusing `scratch` — the
/// writer's per-chunk hot path, which allocates no fresh output `Vec`.
pub fn compress_field_units_with_bound_into(
    units: &[Buffer3],
    cfg: &AmricConfig,
    unit_edge: usize,
    abs_eb: f64,
    scratch: &mut AmricScratch,
    out: &mut Vec<u8>,
) -> StreamInfo {
    let start = out.len();
    let mut w = Writer::from_vec(std::mem::take(out));
    write_envelope(&mut w, CodecId::AmricPipeline, VERSION, 0);
    if units.is_empty() {
        w.put_u8(Mode::Empty as u8);
        *out = w.into_bytes();
        return StreamInfo {
            codec: CodecId::AmricPipeline,
            bytes: out.len() - start,
            units: 0,
            cells: 0,
        };
    }
    let mode = select_mode(cfg, units);
    w.put_u8(mode as u8);
    w.put_u32(units.len() as u32);
    // The SZ payload is the stream's final field: appended raw (no length
    // prefix, no intermediate buffer).
    match mode {
        Mode::LrSle => {
            let lr_cfg = LrConfig::new(abs_eb).with_block_size(cfg.sz_block_size(unit_edge));
            let refs: Vec<&Buffer3> = units.iter().collect();
            lr::compress_domains_into(&refs, &lr_cfg, &mut scratch.lr, w.buf_mut());
        }
        Mode::LrLinearMerge => {
            let (merged, extents) = linear_merge(units);
            for e in &extents {
                w.put_u32(*e as u32);
            }
            let lr_cfg = LrConfig::new(abs_eb).with_block_size(cfg.sz_block_size(unit_edge));
            lr::compress_domains_into(&[&merged], &lr_cfg, &mut scratch.lr, w.buf_mut());
        }
        Mode::InterpLinear => {
            let (merged, extents) = linear_merge(units);
            for e in &extents {
                w.put_u32(*e as u32);
            }
            w.put_u32(merged.dims().nx as u32);
            w.put_u32(merged.dims().ny as u32);
            interp::compress_into(&merged, &InterpConfig::new(abs_eb), w.buf_mut());
        }
        Mode::InterpCluster => {
            let (packed, grid) = cluster_pack(units);
            let d0 = units[0].dims();
            w.put_u32(d0.nx as u32);
            w.put_u32(grid.gx as u32);
            w.put_u32(grid.gy as u32);
            w.put_u32(grid.gz as u32);
            interp::compress_into(&packed, &InterpConfig::new(abs_eb), w.buf_mut());
        }
        Mode::Adaptive => unreachable!("select_mode never picks Adaptive"),
        Mode::Empty => unreachable!("handled above"),
    }
    *out = w.into_bytes();
    StreamInfo {
        codec: CodecId::AmricPipeline,
        bytes: out.len() - start,
        units: units.len(),
        cells: units.iter().map(|u| u.dims().len()).sum(),
    }
}

/// Pick the stream mode the configuration implies, with safe fallbacks
/// for ragged unit shapes (domain edges that are not unit-aligned).
fn select_mode(cfg: &AmricConfig, units: &[Buffer3]) -> Mode {
    match cfg.algorithm {
        SzAlgorithm::LorenzoRegression => match cfg.merge {
            MergePolicy::SharedEncoding => Mode::LrSle,
            MergePolicy::LinearMerge if uniform_xy(units) => Mode::LrLinearMerge,
            // Ragged footprints cannot merge; SLE handles any shapes.
            MergePolicy::LinearMerge => Mode::LrSle,
        },
        SzAlgorithm::Interpolation => {
            if cfg.cluster_arrangement && uniform_cubes(units) {
                Mode::InterpCluster
            } else if uniform_xy(units) {
                Mode::InterpLinear
            } else {
                Mode::LrSle
            }
        }
    }
}

/// Decompress a stream produced by [`compress_field_units`], returning the
/// unit buffers in their original order.
pub fn decompress_field_units(bytes: &[u8]) -> CodecResult<Vec<Buffer3>> {
    let env = expect_envelope(bytes, CodecId::AmricPipeline, VERSION)?;
    let mut r = Reader::new(&bytes[env.payload_offset..]);
    let mode = Mode::from_u8(r.get_u8()?)?;
    if mode == Mode::Empty {
        return Ok(Vec::new());
    }
    let n = r.get_u32()? as usize;
    match mode {
        Mode::LrSle => {
            let units = lr::decompress_domains(r.get_raw(r.remaining())?)?;
            if units.len() != n {
                return Err(CodecError::dims(format!(
                    "expected {n} units, stream holds {}",
                    units.len()
                )));
            }
            Ok(units)
        }
        Mode::LrLinearMerge | Mode::InterpLinear => {
            // Each extent is a u32; reject counts the stream can't hold.
            r.check_count(n, 4)?;
            let mut extents = Vec::with_capacity(n);
            for _ in 0..n {
                let e = r.get_u32()? as usize;
                if e == 0 {
                    return Err(CodecError::dims("zero unit extent"));
                }
                extents.push(e);
            }
            let merged = if mode == Mode::LrLinearMerge {
                lr::decompress(r.get_raw(r.remaining())?)?
            } else {
                let _nx = r.get_u32()?;
                let _ny = r.get_u32()?;
                interp::decompress(r.get_raw(r.remaining())?)?
            };
            if merged.dims().nz != extents.iter().sum::<usize>() {
                return Err(CodecError::dims("merged extents mismatch"));
            }
            Ok(linear_split(&merged, &extents))
        }
        Mode::InterpCluster => {
            let edge = r.get_u32()? as usize;
            let grid = ClusterGrid {
                gx: r.get_u32()? as usize,
                gy: r.get_u32()? as usize,
                gz: r.get_u32()? as usize,
            };
            let packed = interp::decompress(r.get_raw(r.remaining())?)?;
            // Compare in u128 so corrupted grid/edge fields can neither
            // overflow the products nor hit Dims3's nonzero assertion.
            let pd = packed.dims();
            let matches = grid.gx as u128 * edge as u128 == pd.nx as u128
                && grid.gy as u128 * edge as u128 == pd.ny as u128
                && grid.gz as u128 * edge as u128 == pd.nz as u128;
            if !matches {
                return Err(CodecError::dims("cluster grid mismatch"));
            }
            if n > grid.slots() {
                return Err(CodecError::dims("unit count exceeds cluster slots"));
            }
            Ok(cluster_unpack(&packed, grid, Dims3::cube(edge), n))
        }
        Mode::Adaptive => {
            let (_bounds, rough, mut r) = read_adaptive_header(&mut r, n)?;
            let n_tight = rough.iter().filter(|&&g| g).count();
            let n_loose = n - n_tight;
            let tight_len = r.get_u32()? as usize;
            let tight_raw = r.get_raw(tight_len)?;
            let loose_raw = r.get_raw(r.remaining())?;
            if (n_tight == 0) != tight_raw.is_empty() || (n_loose == 0) != loose_raw.is_empty() {
                return Err(CodecError::dims("adaptive substream/group mismatch"));
            }
            let tight_units = if n_tight == 0 {
                Vec::new()
            } else {
                lr::decompress_domains(tight_raw)?
            };
            let loose_units = if n_loose == 0 {
                Vec::new()
            } else {
                lr::decompress_domains(loose_raw)?
            };
            if tight_units.len() != n_tight || loose_units.len() != n_loose {
                return Err(CodecError::dims(format!(
                    "adaptive groups hold {}+{} units, expected {n_tight}+{n_loose}",
                    tight_units.len(),
                    loose_units.len()
                )));
            }
            let mut tight_it = tight_units.into_iter();
            let mut loose_it = loose_units.into_iter();
            Ok(rough
                .iter()
                .map(|&g| {
                    if g {
                        tight_it.next().expect("counted")
                    } else {
                        loose_it.next().expect("counted")
                    }
                })
                .collect())
        }
        Mode::Empty => unreachable!("handled above"),
    }
}

/// Parse the adaptive payload header after the unit count: the tight and
/// loose absolute bounds plus the per-unit group table. Returns the
/// `(tight, loose)` pair, the group table (`true` = tight), and the
/// reader positioned at the tight-substream length prefix.
fn read_adaptive_header<'a>(
    r: &mut Reader<'a>,
    n: usize,
) -> CodecResult<((f64, f64), Vec<bool>, Reader<'a>)> {
    let tight = r.get_f64()?;
    let loose = r.get_f64()?;
    if !(tight > 0.0 && tight.is_finite() && loose >= tight && loose.is_finite()) {
        return Err(CodecError::BadParameter {
            what: "adaptive bounds",
        });
    }
    // Each unit consumes a group byte; reject counts the stream can't hold.
    r.check_count(n, 1)?;
    let mut rough = Vec::with_capacity(n);
    for _ in 0..n {
        match r.get_u8()? {
            0 => rough.push(false),
            1 => rough.push(true),
            _ => {
                return Err(CodecError::BadParameter {
                    what: "bound group id",
                })
            }
        }
    }
    Ok((
        (tight, loose),
        rough,
        Reader::new(r.get_raw(r.remaining())?),
    ))
}

/// Recover the absolute error bound each unit of a pipeline stream was
/// actually quantized with. Returns `Some(per-unit bounds, input order)`
/// for adaptive streams (`Mode::Adaptive`, [`FLAG_UNIT_BOUNDS`]) and
/// `None` for fixed-bound streams, which carry no bound on the wire
/// (their format predates the policy and stays byte-identical).
pub fn stream_unit_bounds(bytes: &[u8]) -> CodecResult<Option<Vec<f64>>> {
    let env = expect_envelope(bytes, CodecId::AmricPipeline, VERSION)?;
    let mut r = Reader::new(&bytes[env.payload_offset..]);
    let mode = Mode::from_u8(r.get_u8()?)?;
    if mode != Mode::Adaptive {
        return Ok(None);
    }
    let n = r.get_u32()? as usize;
    let ((tight, loose), rough, _rest) = read_adaptive_header(&mut r, n)?;
    Ok(Some(
        rough
            .iter()
            .map(|&g| if g { tight } else { loose })
            .collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AmricConfig;

    fn units(n: usize, edge: usize, seed: f64) -> Vec<Buffer3> {
        (0..n)
            .map(|u| {
                let mut b = Buffer3::zeros(Dims3::cube(edge));
                b.fill_with(|i, j, k| {
                    ((i as f64 * 0.6 + seed) * (u as f64 + 1.0)).sin()
                        + (j + k) as f64 * 0.02
                        + u as f64 * 0.3
                });
                b
            })
            .collect()
    }

    fn check_bound(orig: &[Buffer3], back: &[Buffer3], abs_eb: f64) {
        assert_eq!(orig.len(), back.len());
        for (o, b) in orig.iter().zip(back) {
            assert_eq!(o.dims(), b.dims());
            let s = ErrorStats::compare(o.data(), b.data());
            assert!(
                s.max_abs_err <= abs_eb * (1.0 + 1e-9),
                "max err {} > {abs_eb}",
                s.max_abs_err
            );
        }
    }

    #[test]
    fn lr_sle_roundtrip() {
        let u = units(12, 8, 0.0);
        let cfg = AmricConfig::lr(1e-3);
        let abs = resolve_abs_eb(&u, 1e-3);
        let bytes = compress_field_units(&u, &cfg, 8);
        let back = decompress_field_units(&bytes).unwrap();
        check_bound(&u, &back, abs);
    }

    #[test]
    fn lr_lm_roundtrip() {
        let u = units(7, 8, 1.0);
        let cfg = AmricConfig::lr(1e-3).with_merge(MergePolicy::LinearMerge);
        let abs = resolve_abs_eb(&u, 1e-3);
        let bytes = compress_field_units(&u, &cfg, 8);
        let back = decompress_field_units(&bytes).unwrap();
        check_bound(&u, &back, abs);
    }

    #[test]
    fn interp_cluster_roundtrip() {
        let u = units(9, 8, 2.0);
        let cfg = AmricConfig::interp(1e-3);
        let abs = resolve_abs_eb(&u, 1e-3);
        let bytes = compress_field_units(&u, &cfg, 8);
        let back = decompress_field_units(&bytes).unwrap();
        check_bound(&u, &back, abs);
    }

    #[test]
    fn interp_linear_roundtrip() {
        let u = units(9, 8, 3.0);
        let cfg = AmricConfig::interp(1e-3).with_cluster_arrangement(false);
        let abs = resolve_abs_eb(&u, 1e-3);
        let bytes = compress_field_units(&u, &cfg, 8);
        let back = decompress_field_units(&bytes).unwrap();
        check_bound(&u, &back, abs);
    }

    #[test]
    fn ragged_units_fall_back_safely() {
        // Mixed shapes (clipped domain edge): every mode must still
        // roundtrip within bound.
        let mut u = units(4, 8, 4.0);
        let mut edge = Buffer3::zeros(Dims3::new(8, 8, 3));
        edge.fill_with(|i, j, k| (i + j + k) as f64 * 0.1);
        u.push(edge);
        let mut odd = Buffer3::zeros(Dims3::new(5, 8, 8));
        odd.fill_with(|i, j, k| (i * j + k) as f64 * 0.05);
        u.push(odd);
        for cfg in [AmricConfig::lr(1e-3), AmricConfig::interp(1e-3)] {
            let abs = resolve_abs_eb(&u, 1e-3);
            let bytes = compress_field_units(&u, &cfg, 8);
            let back = decompress_field_units(&bytes).unwrap();
            check_bound(&u, &back, abs);
        }
    }

    #[test]
    fn resolve_abs_eb_constant_field_falls_back_to_rel() {
        // Range-0 (constant) fields: the REL bound resolves to the raw
        // relative value, and the pipeline honors it end to end.
        let u = vec![Buffer3::from_vec(Dims3::cube(4), vec![3.25; 64]); 3];
        assert_eq!(resolve_abs_eb(&u, 1e-3), 1e-3);
        for cfg in [AmricConfig::lr(1e-3), AmricConfig::interp(1e-3)] {
            let bytes = compress_field_units(&u, &cfg, 4);
            let back = decompress_field_units(&bytes).unwrap();
            check_bound(&u, &back, 1e-3);
        }
    }

    #[test]
    fn empty_units() {
        let cfg = AmricConfig::lr(1e-3);
        let bytes = compress_field_units(&[], &cfg, 8);
        assert!(bytes.len() < 16);
        assert!(decompress_field_units(&bytes).unwrap().is_empty());
    }

    #[test]
    fn corrupt_stream_errors() {
        let u = units(3, 8, 5.0);
        let cfg = AmricConfig::lr(1e-3);
        let mut bytes = compress_field_units(&u, &cfg, 8);
        bytes[1] ^= 0xFF;
        assert!(decompress_field_units(&bytes).is_err());
        assert!(decompress_field_units(&bytes[..3]).is_err());
    }

    /// Mixed-roughness fixture: half the units are smooth ramps, half
    /// hold high-frequency structure, so the activity classifier splits
    /// them.
    fn mixed_units(n: usize, edge: usize) -> Vec<Buffer3> {
        (0..n)
            .map(|u| {
                let mut b = Buffer3::zeros(Dims3::cube(edge));
                if u % 2 == 0 {
                    b.fill_with(|i, j, k| (i + j + k) as f64 * 1e-3 + u as f64);
                } else {
                    b.fill_with(|i, j, k| {
                        ((i * 7 + j * 3 + k * 5) as f64 * 1.3).sin() * 4.0 + u as f64
                    });
                }
                b
            })
            .collect()
    }

    #[test]
    fn adaptive_roundtrip_within_per_unit_bounds() {
        let u = mixed_units(10, 8);
        let cfg = AmricConfig::lr(1e-3);
        let bound = ResolvedBound::Adaptive {
            tight: 1e-4,
            loose: 1e-2,
        };
        let bytes = compress_field_units_resolved(&u, &cfg, 8, bound);
        let env = expect_envelope(&bytes, CodecId::AmricPipeline, 1).unwrap();
        assert_ne!(env.flags & FLAG_UNIT_BOUNDS, 0, "adaptive flag missing");
        let back = decompress_field_units(&bytes).unwrap();
        let bounds = stream_unit_bounds(&bytes).unwrap().expect("adaptive");
        assert_eq!(bounds.len(), u.len());
        // Both groups must be populated on this fixture.
        assert!(bounds.contains(&1e-4));
        assert!(bounds.contains(&1e-2));
        for ((o, b), &eb) in u.iter().zip(&back).zip(&bounds) {
            assert_eq!(o.dims(), b.dims());
            let s = ErrorStats::compare(o.data(), b.data());
            assert!(
                s.max_abs_err <= eb * (1.0 + 1e-9),
                "unit err {} > its bound {eb}",
                s.max_abs_err
            );
        }
    }

    #[test]
    fn adaptive_single_group_chunks_roundtrip() {
        // Constant chunk: zero activity everywhere classifies all-loose
        // (empty tight substream); identical rough units classify the
        // same way. Both single-group layouts must decode.
        let cfg = AmricConfig::lr(1e-3);
        let bound = ResolvedBound::Adaptive {
            tight: 1e-4,
            loose: 1e-2,
        };
        let flat = vec![Buffer3::from_vec(Dims3::cube(4), vec![2.5; 64]); 3];
        let bytes = compress_field_units_resolved(&flat, &cfg, 4, bound);
        let back = decompress_field_units(&bytes).unwrap();
        check_bound(&flat, &back, 1e-2);
        let bounds = stream_unit_bounds(&bytes).unwrap().expect("adaptive");
        assert!(bounds.iter().all(|&b| b == 1e-2), "constant ⇒ all loose");
    }

    #[test]
    fn adaptive_empty_units_is_plain_empty_marker() {
        let cfg = AmricConfig::lr(1e-3);
        let bound = ResolvedBound::Adaptive {
            tight: 1e-4,
            loose: 1e-2,
        };
        let bytes = compress_field_units_resolved(&[], &cfg, 8, bound);
        let fixed = compress_field_units(&[], &cfg, 8);
        assert_eq!(bytes, fixed, "empty chunks carry no bound");
        assert_eq!(stream_unit_bounds(&bytes).unwrap(), None);
    }

    #[test]
    fn fixed_policy_streams_carry_no_unit_bounds() {
        let u = units(6, 8, 9.0);
        for cfg in [AmricConfig::lr(1e-3), AmricConfig::interp(1e-3)] {
            let bytes = compress_field_units(&u, &cfg, 8);
            let env = expect_envelope(&bytes, CodecId::AmricPipeline, 1).unwrap();
            assert_eq!(env.flags & FLAG_UNIT_BOUNDS, 0);
            assert_eq!(stream_unit_bounds(&bytes).unwrap(), None);
        }
    }

    #[test]
    fn resolved_bound_from_policy() {
        use crate::config::BoundPolicy;
        let f = ResolvedBound::from_policy(BoundPolicy::Fixed, 1e-3, 10.0);
        assert_eq!(f, ResolvedBound::Fixed(1e-2));
        assert_eq!(f.loose(), 1e-2);
        let a = ResolvedBound::from_policy(
            BoundPolicy::GradientAdaptive {
                tight: 1e-4,
                loose: 1e-2,
            },
            1e-3,
            10.0,
        );
        assert_eq!(
            a,
            ResolvedBound::Adaptive {
                tight: 1e-3,
                loose: 1e-1,
            }
        );
        assert_eq!(a.loose(), 1e-1);
        // Range 0 falls back to the relative values themselves.
        let z = ResolvedBound::from_policy(
            BoundPolicy::GradientAdaptive {
                tight: 1e-4,
                loose: 1e-2,
            },
            1e-3,
            0.0,
        );
        assert_eq!(
            z,
            ResolvedBound::Adaptive {
                tight: 1e-4,
                loose: 1e-2,
            }
        );
    }

    #[test]
    fn adaptive_corrupt_streams_error() {
        let u = mixed_units(6, 8);
        let cfg = AmricConfig::lr(1e-3);
        let bound = ResolvedBound::Adaptive {
            tight: 1e-4,
            loose: 1e-2,
        };
        let bytes = compress_field_units_resolved(&u, &cfg, 8, bound);
        let env = expect_envelope(&bytes, CodecId::AmricPipeline, 1).unwrap();
        // Forge a group id > 1.
        let mut forged = bytes.clone();
        forged[env.payload_offset + 1 + 4 + 16] = 7;
        assert!(decompress_field_units(&forged).is_err());
        assert!(stream_unit_bounds(&forged).is_err());
        // Swap the bounds so tight > loose.
        let mut swapped = bytes.clone();
        let p = env.payload_offset + 1 + 4;
        swapped[p..p + 8].copy_from_slice(&1e-2f64.to_le_bytes());
        swapped[p + 8..p + 16].copy_from_slice(&1e-4f64.to_le_bytes());
        assert!(decompress_field_units(&swapped).is_err());
        // Truncations must error, never panic.
        for cut in [env.payload_offset + 3, bytes.len() / 2, bytes.len() - 1] {
            assert!(decompress_field_units(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn sle_beats_lm_on_discontiguous_units() {
        // Units from scattered spatial locations: SLE keeps prediction
        // local, LM lets Lorenzo leak across unrelated block boundaries
        // (paper Fig. 6). Compare reconstruction error at equal settings.
        let u: Vec<Buffer3> = (0..16)
            .map(|i| {
                let mut b = Buffer3::zeros(Dims3::cube(8));
                // Strongly different base level per unit simulates blocks
                // sampled far apart.
                let base = (i as f64 * 37.0).sin() * 100.0;
                b.fill_with(|x, y, z| base + ((x + y + z) as f64 * 0.4).sin());
                b
            })
            .collect();
        let sle_cfg = AmricConfig::lr(1e-4);
        let lm_cfg = sle_cfg.with_merge(MergePolicy::LinearMerge);
        let sle_bytes = compress_field_units(&u, &sle_cfg, 8).len();
        let lm_bytes = compress_field_units(&u, &lm_cfg, 8).len();
        // SLE should not be (much) worse; on discontiguous data it wins.
        assert!(
            sle_bytes as f64 <= lm_bytes as f64 * 1.05,
            "SLE {sle_bytes} vs LM {lm_bytes}"
        );
    }
}
