//! The AMRIC compression pipeline for one (rank, level, field) unit-block
//! set: reorganize (§3.1) → optimized SZ (§3.2) → self-describing stream.

use crate::config::{AmricConfig, MergePolicy};
use crate::reorganize::{cluster_pack, cluster_unpack, linear_merge, linear_split, ClusterGrid};
use sz_codec::codec::{expect_envelope, write_envelope, StreamInfo};
use sz_codec::prelude::*;
use sz_codec::wire::{Reader, Writer};

/// AMRIC pipeline payload format version (rides in the envelope header).
const VERSION: u8 = 1;

/// Reusable compression scratch for the pipeline hot path: holds the
/// SZ_L/R quantization-stream buffers so repeated `*_into` calls stop
/// paying per-call allocations. One per writer rank is enough.
#[derive(Default)]
pub struct AmricScratch {
    lr: LrScratch,
}

impl std::fmt::Debug for AmricScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("AmricScratch { .. }")
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    LrSle = 0,
    LrLinearMerge = 1,
    InterpLinear = 2,
    InterpCluster = 3,
    Empty = 255,
}

impl Mode {
    fn from_u8(v: u8) -> CodecResult<Mode> {
        Ok(match v {
            0 => Mode::LrSle,
            1 => Mode::LrLinearMerge,
            2 => Mode::InterpLinear,
            3 => Mode::InterpCluster,
            255 => Mode::Empty,
            _ => return Err(CodecError::BadMode { found: v }),
        })
    }
}

/// Can the units be merged along z (uniform x/y footprint)?
fn uniform_xy(units: &[Buffer3]) -> bool {
    let d0 = units[0].dims();
    units
        .iter()
        .all(|u| u.dims().nx == d0.nx && u.dims().ny == d0.ny)
}

/// Are all units identical cubes?
fn uniform_cubes(units: &[Buffer3]) -> bool {
    let d0 = units[0].dims();
    d0.nx == d0.ny && d0.ny == d0.nz && units.iter().all(|u| u.dims() == d0)
}

/// Resolve the field's absolute error bound from the rank-local value
/// range across all units (the paper's per-rank range-relative bounds,
/// §4.3).
///
/// **Constant-valued fields** (value range 0 — e.g. a quiet rank whose
/// units all hold one value) fall back to `rel_eb` itself as the absolute
/// bound, matching [`absolute_bound`]. REL bounds therefore stay
/// well-defined at the API boundary: the quantizer receives a positive
/// bound, the constant field round-trips within `rel_eb`, and the in-situ
/// writer resolves its global bound under the same contract.
pub fn resolve_abs_eb(units: &[Buffer3], rel_eb: f64) -> f64 {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for u in units {
        let (l, h) = u.min_max();
        lo = lo.min(l);
        hi = hi.max(h);
    }
    let range = if hi > lo { hi - lo } else { 0.0 };
    absolute_bound(rel_eb, range)
}

/// Compress one field's unit blocks under the given configuration,
/// resolving the relative bound against the *local* value range of the
/// units (offline single-rank studies). The in-situ writer resolves the
/// bound globally across ranks and calls
/// [`compress_field_units_with_bound`] instead.
pub fn compress_field_units(units: &[Buffer3], cfg: &AmricConfig, unit_edge: usize) -> Vec<u8> {
    let abs_eb = if units.is_empty() {
        1.0 // unused: the empty marker short-circuits
    } else {
        resolve_abs_eb(units, cfg.rel_eb)
    };
    compress_field_units_with_bound(units, cfg, unit_edge, abs_eb)
}

/// Compress one field's unit blocks with an explicit absolute error bound
/// (the bound the writer resolved from the global field range).
pub fn compress_field_units_with_bound(
    units: &[Buffer3],
    cfg: &AmricConfig,
    unit_edge: usize,
    abs_eb: f64,
) -> Vec<u8> {
    let mut out = Vec::new();
    compress_field_units_with_bound_pooled(units, cfg, unit_edge, abs_eb, &mut out);
    out
}

thread_local! {
    /// Per-thread (= per-rank) scratch pool backing the `&self` entry
    /// points that cannot hold a scratch of their own.
    static AMRIC_POOL: std::cell::RefCell<AmricScratch> =
        std::cell::RefCell::new(AmricScratch::default());
}

/// Like [`compress_field_units_with_bound_into`] but reusing a
/// thread-local scratch — for `&self` contexts (the `Codec` impl) that
/// cannot thread an explicit [`AmricScratch`] through.
pub fn compress_field_units_with_bound_pooled(
    units: &[Buffer3],
    cfg: &AmricConfig,
    unit_edge: usize,
    abs_eb: f64,
    out: &mut Vec<u8>,
) -> StreamInfo {
    AMRIC_POOL.with(|s| {
        compress_field_units_with_bound_into(
            units,
            cfg,
            unit_edge,
            abs_eb,
            &mut s.borrow_mut(),
            out,
        )
    })
}

/// Compress one field's unit blocks with an explicit absolute error
/// bound, **appending** the stream to `out` and reusing `scratch` — the
/// writer's per-chunk hot path, which allocates no fresh output `Vec`.
pub fn compress_field_units_with_bound_into(
    units: &[Buffer3],
    cfg: &AmricConfig,
    unit_edge: usize,
    abs_eb: f64,
    scratch: &mut AmricScratch,
    out: &mut Vec<u8>,
) -> StreamInfo {
    let start = out.len();
    let mut w = Writer::from_vec(std::mem::take(out));
    write_envelope(&mut w, CodecId::AmricPipeline, VERSION, 0);
    if units.is_empty() {
        w.put_u8(Mode::Empty as u8);
        *out = w.into_bytes();
        return StreamInfo {
            codec: CodecId::AmricPipeline,
            bytes: out.len() - start,
            units: 0,
            cells: 0,
        };
    }
    let mode = select_mode(cfg, units);
    w.put_u8(mode as u8);
    w.put_u32(units.len() as u32);
    // The SZ payload is the stream's final field: appended raw (no length
    // prefix, no intermediate buffer).
    match mode {
        Mode::LrSle => {
            let lr_cfg = LrConfig::new(abs_eb).with_block_size(cfg.sz_block_size(unit_edge));
            let refs: Vec<&Buffer3> = units.iter().collect();
            lr::compress_domains_into(&refs, &lr_cfg, &mut scratch.lr, w.buf_mut());
        }
        Mode::LrLinearMerge => {
            let (merged, extents) = linear_merge(units);
            for e in &extents {
                w.put_u32(*e as u32);
            }
            let lr_cfg = LrConfig::new(abs_eb).with_block_size(cfg.sz_block_size(unit_edge));
            lr::compress_domains_into(&[&merged], &lr_cfg, &mut scratch.lr, w.buf_mut());
        }
        Mode::InterpLinear => {
            let (merged, extents) = linear_merge(units);
            for e in &extents {
                w.put_u32(*e as u32);
            }
            w.put_u32(merged.dims().nx as u32);
            w.put_u32(merged.dims().ny as u32);
            interp::compress_into(&merged, &InterpConfig::new(abs_eb), w.buf_mut());
        }
        Mode::InterpCluster => {
            let (packed, grid) = cluster_pack(units);
            let d0 = units[0].dims();
            w.put_u32(d0.nx as u32);
            w.put_u32(grid.gx as u32);
            w.put_u32(grid.gy as u32);
            w.put_u32(grid.gz as u32);
            interp::compress_into(&packed, &InterpConfig::new(abs_eb), w.buf_mut());
        }
        Mode::Empty => unreachable!("handled above"),
    }
    *out = w.into_bytes();
    StreamInfo {
        codec: CodecId::AmricPipeline,
        bytes: out.len() - start,
        units: units.len(),
        cells: units.iter().map(|u| u.dims().len()).sum(),
    }
}

/// Pick the stream mode the configuration implies, with safe fallbacks
/// for ragged unit shapes (domain edges that are not unit-aligned).
fn select_mode(cfg: &AmricConfig, units: &[Buffer3]) -> Mode {
    match cfg.algorithm {
        SzAlgorithm::LorenzoRegression => match cfg.merge {
            MergePolicy::SharedEncoding => Mode::LrSle,
            MergePolicy::LinearMerge if uniform_xy(units) => Mode::LrLinearMerge,
            // Ragged footprints cannot merge; SLE handles any shapes.
            MergePolicy::LinearMerge => Mode::LrSle,
        },
        SzAlgorithm::Interpolation => {
            if cfg.cluster_arrangement && uniform_cubes(units) {
                Mode::InterpCluster
            } else if uniform_xy(units) {
                Mode::InterpLinear
            } else {
                Mode::LrSle
            }
        }
    }
}

/// Decompress a stream produced by [`compress_field_units`], returning the
/// unit buffers in their original order.
pub fn decompress_field_units(bytes: &[u8]) -> CodecResult<Vec<Buffer3>> {
    let env = expect_envelope(bytes, CodecId::AmricPipeline, VERSION)?;
    let mut r = Reader::new(&bytes[env.payload_offset..]);
    let mode = Mode::from_u8(r.get_u8()?)?;
    if mode == Mode::Empty {
        return Ok(Vec::new());
    }
    let n = r.get_u32()? as usize;
    match mode {
        Mode::LrSle => {
            let units = lr::decompress_domains(r.get_raw(r.remaining())?)?;
            if units.len() != n {
                return Err(CodecError::dims(format!(
                    "expected {n} units, stream holds {}",
                    units.len()
                )));
            }
            Ok(units)
        }
        Mode::LrLinearMerge | Mode::InterpLinear => {
            // Each extent is a u32; reject counts the stream can't hold.
            r.check_count(n, 4)?;
            let mut extents = Vec::with_capacity(n);
            for _ in 0..n {
                let e = r.get_u32()? as usize;
                if e == 0 {
                    return Err(CodecError::dims("zero unit extent"));
                }
                extents.push(e);
            }
            let merged = if mode == Mode::LrLinearMerge {
                lr::decompress(r.get_raw(r.remaining())?)?
            } else {
                let _nx = r.get_u32()?;
                let _ny = r.get_u32()?;
                interp::decompress(r.get_raw(r.remaining())?)?
            };
            if merged.dims().nz != extents.iter().sum::<usize>() {
                return Err(CodecError::dims("merged extents mismatch"));
            }
            Ok(linear_split(&merged, &extents))
        }
        Mode::InterpCluster => {
            let edge = r.get_u32()? as usize;
            let grid = ClusterGrid {
                gx: r.get_u32()? as usize,
                gy: r.get_u32()? as usize,
                gz: r.get_u32()? as usize,
            };
            let packed = interp::decompress(r.get_raw(r.remaining())?)?;
            // Compare in u128 so corrupted grid/edge fields can neither
            // overflow the products nor hit Dims3's nonzero assertion.
            let pd = packed.dims();
            let matches = grid.gx as u128 * edge as u128 == pd.nx as u128
                && grid.gy as u128 * edge as u128 == pd.ny as u128
                && grid.gz as u128 * edge as u128 == pd.nz as u128;
            if !matches {
                return Err(CodecError::dims("cluster grid mismatch"));
            }
            if n > grid.slots() {
                return Err(CodecError::dims("unit count exceeds cluster slots"));
            }
            Ok(cluster_unpack(&packed, grid, Dims3::cube(edge), n))
        }
        Mode::Empty => unreachable!("handled above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AmricConfig;

    fn units(n: usize, edge: usize, seed: f64) -> Vec<Buffer3> {
        (0..n)
            .map(|u| {
                let mut b = Buffer3::zeros(Dims3::cube(edge));
                b.fill_with(|i, j, k| {
                    ((i as f64 * 0.6 + seed) * (u as f64 + 1.0)).sin()
                        + (j + k) as f64 * 0.02
                        + u as f64 * 0.3
                });
                b
            })
            .collect()
    }

    fn check_bound(orig: &[Buffer3], back: &[Buffer3], abs_eb: f64) {
        assert_eq!(orig.len(), back.len());
        for (o, b) in orig.iter().zip(back) {
            assert_eq!(o.dims(), b.dims());
            let s = ErrorStats::compare(o.data(), b.data());
            assert!(
                s.max_abs_err <= abs_eb * (1.0 + 1e-9),
                "max err {} > {abs_eb}",
                s.max_abs_err
            );
        }
    }

    #[test]
    fn lr_sle_roundtrip() {
        let u = units(12, 8, 0.0);
        let cfg = AmricConfig::lr(1e-3);
        let abs = resolve_abs_eb(&u, 1e-3);
        let bytes = compress_field_units(&u, &cfg, 8);
        let back = decompress_field_units(&bytes).unwrap();
        check_bound(&u, &back, abs);
    }

    #[test]
    fn lr_lm_roundtrip() {
        let u = units(7, 8, 1.0);
        let cfg = AmricConfig::lr(1e-3).with_merge(MergePolicy::LinearMerge);
        let abs = resolve_abs_eb(&u, 1e-3);
        let bytes = compress_field_units(&u, &cfg, 8);
        let back = decompress_field_units(&bytes).unwrap();
        check_bound(&u, &back, abs);
    }

    #[test]
    fn interp_cluster_roundtrip() {
        let u = units(9, 8, 2.0);
        let cfg = AmricConfig::interp(1e-3);
        let abs = resolve_abs_eb(&u, 1e-3);
        let bytes = compress_field_units(&u, &cfg, 8);
        let back = decompress_field_units(&bytes).unwrap();
        check_bound(&u, &back, abs);
    }

    #[test]
    fn interp_linear_roundtrip() {
        let u = units(9, 8, 3.0);
        let cfg = AmricConfig::interp(1e-3).with_cluster_arrangement(false);
        let abs = resolve_abs_eb(&u, 1e-3);
        let bytes = compress_field_units(&u, &cfg, 8);
        let back = decompress_field_units(&bytes).unwrap();
        check_bound(&u, &back, abs);
    }

    #[test]
    fn ragged_units_fall_back_safely() {
        // Mixed shapes (clipped domain edge): every mode must still
        // roundtrip within bound.
        let mut u = units(4, 8, 4.0);
        let mut edge = Buffer3::zeros(Dims3::new(8, 8, 3));
        edge.fill_with(|i, j, k| (i + j + k) as f64 * 0.1);
        u.push(edge);
        let mut odd = Buffer3::zeros(Dims3::new(5, 8, 8));
        odd.fill_with(|i, j, k| (i * j + k) as f64 * 0.05);
        u.push(odd);
        for cfg in [AmricConfig::lr(1e-3), AmricConfig::interp(1e-3)] {
            let abs = resolve_abs_eb(&u, 1e-3);
            let bytes = compress_field_units(&u, &cfg, 8);
            let back = decompress_field_units(&bytes).unwrap();
            check_bound(&u, &back, abs);
        }
    }

    #[test]
    fn resolve_abs_eb_constant_field_falls_back_to_rel() {
        // Range-0 (constant) fields: the REL bound resolves to the raw
        // relative value, and the pipeline honors it end to end.
        let u = vec![Buffer3::from_vec(Dims3::cube(4), vec![3.25; 64]); 3];
        assert_eq!(resolve_abs_eb(&u, 1e-3), 1e-3);
        for cfg in [AmricConfig::lr(1e-3), AmricConfig::interp(1e-3)] {
            let bytes = compress_field_units(&u, &cfg, 4);
            let back = decompress_field_units(&bytes).unwrap();
            check_bound(&u, &back, 1e-3);
        }
    }

    #[test]
    fn empty_units() {
        let cfg = AmricConfig::lr(1e-3);
        let bytes = compress_field_units(&[], &cfg, 8);
        assert!(bytes.len() < 16);
        assert!(decompress_field_units(&bytes).unwrap().is_empty());
    }

    #[test]
    fn corrupt_stream_errors() {
        let u = units(3, 8, 5.0);
        let cfg = AmricConfig::lr(1e-3);
        let mut bytes = compress_field_units(&u, &cfg, 8);
        bytes[1] ^= 0xFF;
        assert!(decompress_field_units(&bytes).is_err());
        assert!(decompress_field_units(&bytes[..3]).is_err());
    }

    #[test]
    fn sle_beats_lm_on_discontiguous_units() {
        // Units from scattered spatial locations: SLE keeps prediction
        // local, LM lets Lorenzo leak across unrelated block boundaries
        // (paper Fig. 6). Compare reconstruction error at equal settings.
        let u: Vec<Buffer3> = (0..16)
            .map(|i| {
                let mut b = Buffer3::zeros(Dims3::cube(8));
                // Strongly different base level per unit simulates blocks
                // sampled far apart.
                let base = (i as f64 * 37.0).sin() * 100.0;
                b.fill_with(|x, y, z| base + ((x + y + z) as f64 * 0.4).sin());
                b
            })
            .collect();
        let sle_cfg = AmricConfig::lr(1e-4);
        let lm_cfg = sle_cfg.with_merge(MergePolicy::LinearMerge);
        let sle_bytes = compress_field_units(&u, &sle_cfg, 8).len();
        let lm_bytes = compress_field_units(&u, &lm_cfg, 8).len();
        // SLE should not be (much) worse; on discontiguous data it wins.
        assert!(
            sle_bytes as f64 <= lm_bytes as f64 * 1.05,
            "SLE {sle_bytes} vs LM {lm_bytes}"
        );
    }
}
