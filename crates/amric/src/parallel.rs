//! Rank-local parallel compression engine: compress many independent
//! chunks through any [`Codec`] on a worker pool, returning the streams
//! in submission order.
//!
//! This is the codec-facing face of the overlap machinery
//! ([`rankpar::pool`]): the writer's field-level pipeline
//! ([`crate::writer::write_field_parallel`]) and the chunk-level
//! pipelined collective (`h5lite::collective_write_pipelined`) are built
//! on the same pool. The hard invariant, enforced by the
//! `parallel_determinism` test suite, is that for every codec family and
//! worker count the produced streams are **byte-identical** to calling
//! `compress_into` serially: each chunk's stream depends only on its data
//! and the codec configuration, never on worker identity or completion
//! order.

use rankpar::pool::for_each_ordered;
use sz_codec::codec::Codec;
use sz_codec::{Buffer3, CodecResult};

/// Compress each chunk (a set of unit blocks) through `codec` on a pool
/// of `workers` threads, returning one stream per chunk in submission
/// order. `workers <= 1` runs the chunks inline — the serial reference
/// path the determinism suite compares against.
///
/// The first compression error (in submission order) aborts the pool,
/// which drains cleanly and returns that error.
pub fn compress_chunks_parallel(
    codec: &dyn Codec,
    chunks: &[Vec<Buffer3>],
    workers: usize,
) -> CodecResult<Vec<Vec<u8>>> {
    let mut streams = Vec::with_capacity(chunks.len());
    for_each_ordered(
        chunks,
        workers,
        workers.max(1) * 2,
        || (),
        |_state, _i, units| {
            let mut out = Vec::new();
            codec.compress_into(units, &mut out)?;
            Ok(out)
        },
        |_i, stream| {
            streams.push(stream);
            Ok(())
        },
    )?;
    Ok(streams)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::AmricCodec;
    use crate::config::AmricConfig;
    use sz_codec::prelude::*;

    fn chunks(n: usize) -> Vec<Vec<Buffer3>> {
        (0..n)
            .map(|c| {
                (0..3)
                    .map(|u| {
                        let mut b = Buffer3::zeros(Dims3::cube(6));
                        b.fill_with(|i, j, k| {
                            ((i + 2 * j) as f64 * 0.3 + c as f64).sin() + (k * u) as f64 * 0.05
                        });
                        b
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn parallel_streams_match_serial() {
        let codec = AmricCodec::new(AmricConfig::lr(1e-3), 6);
        let data = chunks(9);
        let serial = compress_chunks_parallel(&codec, &data, 1).unwrap();
        for workers in [2, 4] {
            let par = compress_chunks_parallel(&codec, &data, workers).unwrap();
            assert_eq!(serial, par, "workers={workers}");
        }
    }

    #[test]
    fn error_surfaces_and_pool_drains() {
        // TAC with a fixed origin count rejects mismatched chunks; inject
        // one mid-batch.
        let origins = vec![amr_mesh::prelude::IntVect::splat(0); 3];
        let codec = crate::codec::TacCodec::new(1e-3, origins);
        let mut data = chunks(8);
        data[5].pop(); // 2 units vs 3 origins → typed error
        let err = compress_chunks_parallel(&codec, &data, 4).unwrap_err();
        assert!(
            matches!(err, sz_codec::CodecError::DimsMismatch { .. }),
            "{err:?}"
        );
    }
}
