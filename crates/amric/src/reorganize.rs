//! Reorganization of truncated unit blocks (paper §3.1, Fig. 4 right):
//! linear stacking for SZ_L/R, cube-like clustering for SZ_Interp.

use sz_codec::{Buffer3, Dims3};

/// Stack same-footprint unit blocks along z ("put the unit blocks along
/// the z-axis", the minimum-operation arrangement for SZ_L/R).
/// Returns the merged buffer and the per-unit z-extents for splitting.
pub fn linear_merge(units: &[Buffer3]) -> (Buffer3, Vec<usize>) {
    assert!(!units.is_empty(), "nothing to merge");
    let d0 = units[0].dims();
    assert!(
        units.iter().all(|u| {
            let d = u.dims();
            d.nx == d0.nx && d.ny == d0.ny
        }),
        "linear merge needs a uniform x/y footprint"
    );
    let nz: usize = units.iter().map(|u| u.dims().nz).sum();
    let mut merged = Buffer3::zeros(Dims3::new(d0.nx, d0.ny, nz));
    let mut z = 0;
    let mut extents = Vec::with_capacity(units.len());
    for u in units {
        merged.paste(u, 0, 0, z);
        z += u.dims().nz;
        extents.push(u.dims().nz);
    }
    (merged, extents)
}

/// Split a linear merge back into units.
pub fn linear_split(merged: &Buffer3, z_extents: &[usize]) -> Vec<Buffer3> {
    let d = merged.dims();
    let mut out = Vec::with_capacity(z_extents.len());
    let mut z = 0;
    for &nz in z_extents {
        out.push(merged.extract(0, 0, z, Dims3::new(d.nx, d.ny, nz)));
        z += nz;
    }
    assert_eq!(z, d.nz, "extents do not cover the merged buffer");
    out
}

/// Grid shape of a cluster arrangement: `(gx, gy, gz)` unit slots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClusterGrid {
    pub gx: usize,
    pub gy: usize,
    pub gz: usize,
}

impl ClusterGrid {
    /// Total slots.
    pub fn slots(&self) -> usize {
        self.gx * self.gy * self.gz
    }
}

/// Choose a near-cubic slot grid for `n` unit blocks, minimizing slack
/// first and aspect ratio second — the paper's "cluster the truncated unit
/// blocks more closely into a cube-like formation".
pub fn cluster_grid(n: usize) -> ClusterGrid {
    assert!(n > 0);
    let mut best = ClusterGrid {
        gx: n,
        gy: 1,
        gz: 1,
    };
    let mut best_key = (usize::MAX, usize::MAX);
    let cap = (n as f64).cbrt().ceil() as usize + 1;
    for gz in 1..=cap {
        for gy in gz..=n.div_ceil(gz) {
            let gx = n.div_ceil(gy * gz);
            if gx < gy {
                continue;
            }
            let slack = gx * gy * gz - n;
            let aspect = gx - gz; // smaller = more cubic
            if (slack, aspect) < best_key {
                best_key = (slack, aspect);
                best = ClusterGrid { gx, gy, gz };
            }
        }
    }
    best
}

/// Pack cubic unit blocks of edge `b` into a near-cube buffer. Slack slots
/// (when `n` doesn't factor nicely) are filled with copies of the last
/// unit so the interpolator sees smooth data; [`cluster_unpack`] drops
/// them. Returns the packed buffer and the grid used.
pub fn cluster_pack(units: &[Buffer3]) -> (Buffer3, ClusterGrid) {
    assert!(!units.is_empty(), "nothing to pack");
    let d0 = units[0].dims();
    assert!(
        units.iter().all(|u| u.dims() == d0),
        "cluster packing needs uniformly shaped units"
    );
    let grid = cluster_grid(units.len());
    let mut packed = Buffer3::zeros(Dims3::new(
        grid.gx * d0.nx,
        grid.gy * d0.ny,
        grid.gz * d0.nz,
    ));
    let last = units.last().expect("non-empty");
    for slot in 0..grid.slots() {
        let u = units.get(slot).unwrap_or(last);
        let (sx, sy, sz) = slot_coords(grid, slot);
        packed.paste(u, sx * d0.nx, sy * d0.ny, sz * d0.nz);
    }
    (packed, grid)
}

/// Extract the first `n` units back out of a packed cluster buffer.
pub fn cluster_unpack(packed: &Buffer3, grid: ClusterGrid, unit: Dims3, n: usize) -> Vec<Buffer3> {
    assert!(n <= grid.slots());
    (0..n)
        .map(|slot| {
            let (sx, sy, sz) = slot_coords(grid, slot);
            packed.extract(sx * unit.nx, sy * unit.ny, sz * unit.nz, unit)
        })
        .collect()
}

#[inline]
fn slot_coords(grid: ClusterGrid, slot: usize) -> (usize, usize, usize) {
    let sx = slot % grid.gx;
    let sy = (slot / grid.gx) % grid.gy;
    let sz = slot / (grid.gx * grid.gy);
    (sx, sy, sz)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(v: f64, edge: usize) -> Buffer3 {
        let mut b = Buffer3::zeros(Dims3::cube(edge));
        b.fill_with(|i, j, k| v + (i + j + k) as f64 * 0.01);
        b
    }

    #[test]
    fn linear_roundtrip() {
        let units: Vec<Buffer3> = (0..5).map(|i| unit(i as f64, 4)).collect();
        let (merged, ext) = linear_merge(&units);
        assert_eq!(merged.dims(), Dims3::new(4, 4, 20));
        let back = linear_split(&merged, &ext);
        assert_eq!(back, units);
    }

    #[test]
    fn linear_merge_mixed_z() {
        let a = unit(0.0, 4);
        let mut b = Buffer3::zeros(Dims3::new(4, 4, 2));
        b.fill_with(|i, _, _| i as f64);
        let (merged, ext) = linear_merge(&[a.clone(), b.clone()]);
        assert_eq!(merged.dims().nz, 6);
        let back = linear_split(&merged, &ext);
        assert_eq!(back[0], a);
        assert_eq!(back[1], b);
    }

    #[test]
    fn cluster_grid_near_cubic() {
        let g = cluster_grid(27);
        assert_eq!((g.gx, g.gy, g.gz), (3, 3, 3));
        let g8 = cluster_grid(8);
        assert_eq!((g8.gx, g8.gy, g8.gz), (2, 2, 2));
        // Primes still get low slack.
        let g7 = cluster_grid(7);
        assert!(g7.slots() >= 7 && g7.slots() - 7 <= 1, "{g7:?}");
        let g1 = cluster_grid(1);
        assert_eq!(g1.slots(), 1);
    }

    #[test]
    fn cluster_grid_beats_linear_on_aspect() {
        // The whole point: 64 units of 8³ → 2×2×... near cube, not 1×1×64.
        let g = cluster_grid(64);
        assert_eq!((g.gx, g.gy, g.gz), (4, 4, 4));
    }

    #[test]
    fn cluster_roundtrip() {
        let units: Vec<Buffer3> = (0..10).map(|i| unit(i as f64 * 3.0, 4)).collect();
        let (packed, grid) = cluster_pack(&units);
        assert!(grid.slots() >= 10);
        let back = cluster_unpack(&packed, grid, Dims3::cube(4), 10);
        assert_eq!(back, units);
    }

    #[test]
    fn cluster_slack_filled_smoothly() {
        let units: Vec<Buffer3> = (0..5).map(|i| unit(i as f64, 2)).collect();
        let (packed, grid) = cluster_pack(&units);
        // Slack slots replicate the last unit (no zero holes).
        if grid.slots() > 5 {
            let last_slot = grid.slots() - 1;
            let (sx, sy, sz) = super::slot_coords(grid, last_slot);
            let v = packed.get(sx * 2, sy * 2, sz * 2);
            assert_eq!(v, units[4].get(0, 0, 0));
        }
    }

    #[test]
    #[should_panic(expected = "uniformly shaped")]
    fn cluster_rejects_ragged_units() {
        let a = unit(0.0, 4);
        let b = unit(0.0, 2);
        cluster_pack(&[a, b]);
    }
}
