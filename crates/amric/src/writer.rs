//! The in-situ AMRIC writer (paper §3.3): field-major data layout, one
//! global chunk sized to the largest rank, the size-aware SZ filter, and
//! collective writes through the h5lite container.
//!
//! Per level and field, every rank stages its surviving unit blocks into a
//! single buffer (the layout change of §3.3 Solution 1 — same-field data
//! grouped together instead of AMReX's per-box field interleaving), the
//! global chunk size is the max staged size over ranks (§3.3 Solution 2),
//! and each rank contributes exactly one chunk whose *actual* length rides
//! in the chunk metadata so no padding is ever compressed.

use crate::config::AmricConfig;
use crate::pipeline::{compress_field_units_with_bound_pooled, decompress_field_units};
use crate::preprocess::{extract_units, plan_units, unit_edge_for_level};
use amr_mesh::prelude::*;
use h5lite::prelude::*;
use rankpar::prelude::*;
use std::sync::Arc;
use std::time::Instant;
use sz_codec::CodecError;

/// Filter id for the AMRIC application-defined filter (outside h5lite's
/// built-in registry, like a dynamically loaded HDF5 plugin).
pub const FILTER_AMRIC: u32 = 100;

/// The AMRIC chunk filter: the chunk payload is a concatenation of cubic
/// unit blocks of edge `unit_edge`; encode runs the full §3.1–3.2
/// pipeline on them. Encoding appends into the caller's buffer through
/// the thread-local (= per-rank) scratch pool, so the per-chunk hot path
/// allocates no fresh output `Vec` and no fresh quantization scratch.
#[derive(Clone, Copy, Debug)]
pub struct AmricFieldFilter {
    /// Pipeline configuration.
    pub cfg: AmricConfig,
    /// Unit-block edge for the level being written.
    pub unit_edge: usize,
    /// Absolute error bound, resolved by the writer from the *global*
    /// (all-rank) range of the field on this level — standard SZ REL
    /// semantics over the whole dataset. Quiet ranks therefore quantize to
    /// near-constants, which is where WarpX's huge ratios come from.
    pub abs_eb: f64,
}

impl ChunkFilter for AmricFieldFilter {
    fn id(&self) -> u32 {
        FILTER_AMRIC
    }

    fn client_data(&self) -> Vec<u8> {
        vec![self.unit_edge as u8]
    }

    fn encode_into(&self, chunk: &[f64], out: &mut Vec<u8>) -> H5Result<()> {
        let e3 = self.unit_edge * self.unit_edge * self.unit_edge;
        if e3 == 0 || !chunk.len().is_multiple_of(e3) {
            return Err(H5Error::Codec(CodecError::dims(format!(
                "chunk of {} elems is not a multiple of unit {}³",
                chunk.len(),
                self.unit_edge
            ))));
        }
        let units: Vec<sz_codec::Buffer3> = chunk
            .chunks_exact(e3)
            .map(|u| sz_codec::Buffer3::from_vec(sz_codec::Dims3::cube(self.unit_edge), u.to_vec()))
            .collect();
        compress_field_units_with_bound_pooled(&units, &self.cfg, self.unit_edge, self.abs_eb, out);
        Ok(())
    }

    fn decode(&self, bytes: &[u8], n_elems: usize) -> H5Result<Vec<f64>> {
        let units = decompress_field_units(bytes)?;
        let mut out = Vec::with_capacity(n_elems);
        for u in units {
            out.extend_from_slice(u.data());
        }
        if out.len() < n_elems {
            return Err(H5Error::Format(format!(
                "AMRIC chunk decoded {} elems, need {n_elems}",
                out.len()
            )));
        }
        out.truncate(n_elems);
        Ok(out)
    }
}

/// Outcome of one snapshot write: per-rank cost ledgers plus size
/// accounting.
#[derive(Clone, Debug)]
pub struct WriteReport {
    /// World size the snapshot was written with.
    pub nranks: usize,
    /// Per-rank storage-event ledgers (includes measured encode seconds).
    pub ledgers: Vec<IoLedger>,
    /// Per-rank measured pre-processing seconds (staging, planning,
    /// layout).
    pub prep_seconds: Vec<f64>,
    /// Raw snapshot bytes (all levels × fields × cells × 8, including
    /// redundant coarse data — what a no-compression write stores).
    pub orig_bytes: u64,
    /// Stored payload bytes of the field datasets.
    pub stored_bytes: u64,
}

impl WriteReport {
    /// End-to-end compression ratio of the snapshot.
    pub fn compression_ratio(&self) -> f64 {
        self.orig_bytes as f64 / self.stored_bytes.max(1) as f64
    }

    /// Modeled (prep, io) seconds for the slowest rank under a PFS model.
    pub fn modeled_seconds(&self, params: &PfsParams) -> (f64, f64) {
        let prep = self.prep_seconds.iter().cloned().fold(0.0, f64::max);
        let io = job_seconds(&self.ledgers, params, self.nranks);
        (prep, io)
    }
}

/// Encode a u64 list as f64s (exact below 2⁵³) for metadata datasets.
pub(crate) fn ints_to_f64(vals: impl IntoIterator<Item = u64>) -> Vec<f64> {
    vals.into_iter().map(|v| v as f64).collect()
}

/// Write hierarchy-structure metadata (domains, boxes, owners, field
/// names) — the plotfile header AMReX also stores uncompressed.
pub(crate) fn write_metadata(writer: &H5Writer, h: &AmrHierarchy, extra: &[u64]) -> H5Result<()> {
    let nranks = h.level(0).data.distribution().nranks() as u64;
    let mut header: Vec<u64> = vec![h.num_levels() as u64, h.field_names().len() as u64, nranks];
    header.extend_from_slice(extra);
    for l in 0..h.num_levels() {
        let level = h.level(l);
        let n = level.domain.size();
        header.push(n.get(0) as u64);
        header.push(n.get(1) as u64);
        header.push(n.get(2) as u64);
        header.push(level.data.box_array().len() as u64);
        header.push(if l + 1 < h.num_levels() {
            h.ref_ratio(l) as u64
        } else {
            0
        });
    }
    let header_f = ints_to_f64(header);
    writer.write_dataset("meta/header", &header_f, header_f.len().max(1), &NoFilter)?;
    // Field names as UTF-8 bytes, each byte one f64.
    let mut names = Vec::new();
    for n in h.field_names() {
        names.push(n.len() as u64);
        names.extend(n.as_bytes().iter().map(|&b| b as u64));
    }
    let names_f = ints_to_f64(names);
    writer.write_dataset(
        "meta/field_names",
        &names_f,
        names_f.len().max(1),
        &NoFilter,
    )?;
    for l in 0..h.num_levels() {
        let level = h.level(l);
        let mut boxes = Vec::new();
        for (i, b) in level.data.box_array().iter().enumerate() {
            for d in 0..3 {
                boxes.push(b.lo.get(d) as u64);
            }
            for d in 0..3 {
                boxes.push(b.hi.get(d) as u64);
            }
            boxes.push(level.data.distribution().owner(i) as u64);
        }
        let boxes_f = ints_to_f64(boxes);
        writer.write_dataset(
            &format!("meta/level_{l}/boxes"),
            &boxes_f,
            boxes_f.len().max(1),
            &NoFilter,
        )?;
    }
    Ok(())
}

/// Dataset name for one level/field pair (fields addressed by index so
/// arbitrary names cannot collide with the path syntax).
pub(crate) fn field_dataset(level: usize, field: usize) -> String {
    format!("level_{level}/field_{field}")
}

/// Write one snapshot with the full AMRIC pipeline. Returns the per-rank
/// cost report. The blocking factor `bf` must match the hierarchy's fine
/// grids (it drives unit sizes via [`unit_edge_for_level`]).
pub fn write_amric(
    path: impl AsRef<std::path::Path>,
    h: &AmrHierarchy,
    cfg: &AmricConfig,
    bf: i64,
) -> H5Result<WriteReport> {
    let nranks = h.level(0).data.distribution().nranks();
    let writer = Arc::new(H5Writer::create(path)?);
    let num_levels = h.num_levels();
    let nfields = h.field_names().len();

    let per_rank: Vec<(IoLedger, f64)> = run_ranks(nranks, |comm| {
        let rank = comm.rank();
        let mut ledger = IoLedger::default();
        let mut prep_s = 0.0;
        for l in 0..num_levels {
            let level = &h.level(l).data;
            let finer =
                (l + 1 < num_levels).then(|| (h.level(l + 1).data.box_array(), h.ref_ratio(l)));
            let unit = unit_edge_for_level(bf, l, num_levels);
            let t0 = Instant::now();
            let units = plan_units(level, finer, unit, rank, cfg.remove_redundancy);
            prep_s += t0.elapsed().as_secs_f64();
            for f in 0..nfields {
                // Stage field-major (§3.3 Solution 1): this rank's units of
                // one field, concatenated.
                let t0 = Instant::now();
                let bufs = extract_units(level, &units, f);
                let mut staged = Vec::with_capacity(bufs.iter().map(|b| b.dims().len()).sum());
                for b in &bufs {
                    staged.extend_from_slice(b.data());
                }
                prep_s += t0.elapsed().as_secs_f64();
                // Resolve the relative bound against the field's global
                // range on this level (allreduce over ranks).
                let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                for &v in &staged {
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
                let ranges = comm.allgather((lo, hi));
                let glo = ranges.iter().map(|r| r.0).fold(f64::INFINITY, f64::min);
                let ghi = ranges.iter().map(|r| r.1).fold(f64::NEG_INFINITY, f64::max);
                let range = if ghi > glo { ghi - glo } else { 0.0 };
                // Constant (range-0) fields fall back to the raw relative
                // value — same contract as `resolve_abs_eb`, so quiet
                // ranks get a well-defined, non-degenerate bound.
                let abs_eb = sz_codec::quantizer::absolute_bound(cfg.rel_eb, range);
                let filter = AmricFieldFilter {
                    cfg: *cfg,
                    unit_edge: unit as usize,
                    abs_eb,
                };
                // Global chunk = biggest rank (§3.3 Solution 2).
                let chunk_elems = comm.allreduce_max(staged.len() as u64) as usize;
                let mode = if cfg.size_aware_filter {
                    FilterMode::SizeAware
                } else {
                    FilterMode::Standard
                };
                let chunks = if chunk_elems == 0 {
                    Vec::new()
                } else {
                    vec![ChunkData::full(staged)]
                };
                let receipt = collective_write(
                    &comm,
                    &writer,
                    &field_dataset(l, f),
                    &chunks,
                    chunk_elems.max(1),
                    &filter,
                    mode,
                )
                .expect("collective write failed");
                fold_receipt(&mut ledger, &receipt);
            }
        }
        if rank == 0 {
            write_metadata(&writer, h, &[bf as u64, u64::from(cfg.remove_redundancy)])
                .expect("metadata write failed");
        }
        comm.barrier();
        (ledger, prep_s)
    });

    writer.finish()?;
    let (ledgers, prep_seconds): (Vec<IoLedger>, Vec<f64>) = per_rank.into_iter().unzip();
    let stored = ledgers.iter().map(|l| l.bytes_written).sum();
    Ok(WriteReport {
        nranks,
        ledgers,
        prep_seconds,
        orig_bytes: h.snapshot_bytes(),
        stored_bytes: stored,
    })
}

/// Fold a collective receipt into a rank ledger (encode time counts as
/// measured compute inside the I/O phase, matching the paper's breakdown).
pub(crate) fn fold_receipt(ledger: &mut IoLedger, r: &CollectiveReceipt) {
    ledger.filter_calls += r.filter_calls;
    ledger.write_calls += r.write_calls;
    ledger.bytes_written += r.bytes_written;
    ledger.dataset_creates += r.dataset_creates;
    ledger.add_measured_compute(r.encode_seconds);
}

#[cfg(test)]
mod tests {
    use super::*;
    use amr_apps::prelude::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("amric-writer-{}-{name}.h5l", std::process::id()));
        p
    }

    fn small_nyx() -> AmrHierarchy {
        let s = NyxScenario::new(11);
        let cfg = AmrRunConfig {
            coarse_dims: (16, 16, 16),
            max_grid_size: 8,
            blocking_factor: 8,
            nranks: 2,
            num_levels: 2,
            fine_fraction: 0.05,
            grid_eff: 0.7,
        };
        build_hierarchy(&s, &cfg, 0.0)
    }

    #[test]
    fn amric_write_produces_compressed_file() {
        let h = small_nyx();
        let path = tmp("lr");
        let report = write_amric(&path, &h, &AmricConfig::lr(1e-3), 8).unwrap();
        assert_eq!(report.nranks, 2);
        assert!(
            report.compression_ratio() > 2.0,
            "CR {}",
            report.compression_ratio()
        );
        // One filter call per (rank-with-data, level, field).
        let total_filters: u64 = report.ledgers.iter().map(|l| l.filter_calls).sum();
        assert!(total_filters <= 2 * 2 * 6);
        let r = H5Reader::open(&path).unwrap();
        assert!(r.dataset_names().contains(&"level_0/field_0"));
        assert!(r.dataset_names().contains(&"meta/header"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn interp_variant_writes() {
        let h = small_nyx();
        let path = tmp("interp");
        let report = write_amric(&path, &h, &AmricConfig::interp(1e-3), 8).unwrap();
        assert!(report.compression_ratio() > 2.0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn filter_roundtrip_standalone() {
        let filter = AmricFieldFilter {
            cfg: AmricConfig::lr(1e-3),
            unit_edge: 4,
            abs_eb: 1e-3 * 3.2, // rel bound × data range used below
        };
        let mut chunk = Vec::new();
        for u in 0..5 {
            for i in 0..64 {
                chunk.push((u * 64 + i) as f64 * 0.01);
            }
        }
        let enc = filter.encode(&chunk).unwrap();
        let dec = filter.decode(&enc, chunk.len()).unwrap();
        let range = chunk.len() as f64 * 0.01;
        for (o, r) in chunk.iter().zip(&dec) {
            assert!((o - r).abs() <= 1e-3 * range + 1e-12);
        }
    }

    #[test]
    fn filter_rejects_non_unit_multiple_chunks() {
        // Regression: a chunk whose length is not a multiple of the unit
        // volume must surface as a typed error, not an assert panic.
        let filter = AmricFieldFilter {
            cfg: AmricConfig::lr(1e-3),
            unit_edge: 4,
            abs_eb: 1e-3,
        };
        let chunk = vec![0.0; 63]; // 4³ = 64 ∤ 63
        let err = filter.encode(&chunk).unwrap_err();
        assert!(
            matches!(err.as_codec(), Some(CodecError::DimsMismatch { .. })),
            "{err:?}"
        );
        let mut out = vec![0xAAu8; 3];
        assert!(filter.encode_into(&chunk, &mut out).is_err());
        // A zero unit edge is equally rejected (no division-by-zero path).
        let zero = AmricFieldFilter {
            unit_edge: 0,
            ..filter
        };
        assert!(zero.encode(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn modeled_seconds_monotone_in_scale() {
        let h = small_nyx();
        let path = tmp("model");
        let report = write_amric(&path, &h, &AmricConfig::lr(1e-3), 8).unwrap();
        let params = PfsParams::default();
        let (_, io) = report.modeled_seconds(&params);
        assert!(io > 0.0);
        std::fs::remove_file(&path).ok();
    }
}
