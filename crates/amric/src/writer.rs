//! The in-situ AMRIC writer (paper §3.3): field-major data layout, one
//! global chunk sized to the largest rank, the size-aware SZ filter, and
//! collective writes through the h5lite container.
//!
//! Per level and field, every rank stages its surviving unit blocks into a
//! single buffer (the layout change of §3.3 Solution 1 — same-field data
//! grouped together instead of AMReX's per-box field interleaving), the
//! global chunk size is the max staged size over ranks (§3.3 Solution 2),
//! and each rank contributes exactly one chunk whose *actual* length rides
//! in the chunk metadata so no padding is ever compressed.

use crate::config::AmricConfig;
use crate::pipeline::{
    compress_field_units_resolved_into, compress_field_units_resolved_pooled,
    decompress_field_units, AmricScratch, ResolvedBound,
};
use crate::preprocess::{extract_units, plan_units, unit_edge_for_level};
use amr_mesh::prelude::*;
use h5lite::prelude::*;
use rankpar::prelude::*;
use std::sync::Arc;
use std::time::Instant;
use sz_codec::CodecError;

/// Filter id for the AMRIC application-defined filter (outside h5lite's
/// built-in registry, like a dynamically loaded HDF5 plugin).
pub const FILTER_AMRIC: u32 = 100;

/// The AMRIC chunk filter: the chunk payload is a concatenation of cubic
/// unit blocks of edge `unit_edge`; encode runs the full §3.1–3.2
/// pipeline on them. Encoding appends into the caller's buffer through
/// the thread-local (= per-rank) scratch pool, so the per-chunk hot path
/// allocates no fresh output `Vec` and no fresh quantization scratch.
#[derive(Clone, Copy, Debug)]
pub struct AmricFieldFilter {
    /// Pipeline configuration.
    pub cfg: AmricConfig,
    /// Unit-block edge for the level being written.
    pub unit_edge: usize,
    /// Error bound, resolved by the writer from the *global* (all-rank)
    /// range of the field on this level — standard SZ REL semantics over
    /// the whole dataset. Quiet ranks therefore quantize to
    /// near-constants, which is where WarpX's huge ratios come from.
    /// [`ResolvedBound::Fixed`] is the paper path (byte-identical to the
    /// pre-policy writer); [`ResolvedBound::Adaptive`] spends the budget
    /// per unit block.
    pub bound: ResolvedBound,
}

impl AmricFieldFilter {
    /// Filter with one uniform absolute bound — the pre-policy
    /// constructor shape, used throughout the fixed-bound suites.
    pub fn fixed(cfg: AmricConfig, unit_edge: usize, abs_eb: f64) -> Self {
        AmricFieldFilter {
            cfg,
            unit_edge,
            bound: ResolvedBound::Fixed(abs_eb),
        }
    }

    /// Cut the chunk payload into its cubic unit blocks, rejecting chunks
    /// whose length is not a multiple of the unit volume (typed error,
    /// never a panic — the PR 2 regression contract).
    fn cut_units(&self, chunk: &[f64]) -> H5Result<Vec<sz_codec::Buffer3>> {
        let e3 = self.unit_edge * self.unit_edge * self.unit_edge;
        if e3 == 0 || !chunk.len().is_multiple_of(e3) {
            return Err(H5Error::Codec(CodecError::dims(format!(
                "chunk of {} elems is not a multiple of unit {}³",
                chunk.len(),
                self.unit_edge
            ))));
        }
        Ok(chunk
            .chunks_exact(e3)
            .map(|u| sz_codec::Buffer3::from_vec(sz_codec::Dims3::cube(self.unit_edge), u.to_vec()))
            .collect())
    }

    /// [`ChunkFilter::encode_into`] with an **explicit** scratch pool —
    /// the parallel engine's entry point, where every pool worker owns
    /// its own [`AmricScratch`] instead of sharing the thread-local one.
    /// The produced bytes are identical either way: compression depends
    /// only on the chunk data and this filter's parameters, never on
    /// scratch history (the scratch is cleared at entry).
    pub fn encode_with_scratch(
        &self,
        chunk: &[f64],
        scratch: &mut AmricScratch,
        out: &mut Vec<u8>,
    ) -> H5Result<()> {
        let units = self.cut_units(chunk)?;
        compress_field_units_resolved_into(
            &units,
            &self.cfg,
            self.unit_edge,
            self.bound,
            scratch,
            out,
        );
        Ok(())
    }
}

impl ChunkFilter for AmricFieldFilter {
    fn id(&self) -> u32 {
        FILTER_AMRIC
    }

    fn client_data(&self) -> Vec<u8> {
        vec![self.unit_edge as u8]
    }

    fn encode_into(&self, chunk: &[f64], out: &mut Vec<u8>) -> H5Result<()> {
        let units = self.cut_units(chunk)?;
        compress_field_units_resolved_pooled(&units, &self.cfg, self.unit_edge, self.bound, out);
        Ok(())
    }

    fn decode(&self, bytes: &[u8], n_elems: usize) -> H5Result<Vec<f64>> {
        let units = decompress_field_units(bytes)?;
        let mut out = Vec::with_capacity(n_elems);
        for u in units {
            out.extend_from_slice(u.data());
        }
        if out.len() < n_elems {
            return Err(H5Error::Format(format!(
                "AMRIC chunk decoded {} elems, need {n_elems}",
                out.len()
            )));
        }
        out.truncate(n_elems);
        Ok(out)
    }
}

/// Outcome of one snapshot write: per-rank cost ledgers plus size
/// accounting.
#[derive(Clone, Debug)]
pub struct WriteReport {
    /// World size the snapshot was written with.
    pub nranks: usize,
    /// Per-rank storage-event ledgers (includes measured encode seconds).
    pub ledgers: Vec<IoLedger>,
    /// Per-rank measured pre-processing seconds (staging, planning,
    /// layout).
    pub prep_seconds: Vec<f64>,
    /// Raw snapshot bytes (all levels × fields × cells × 8, including
    /// redundant coarse data — what a no-compression write stores).
    pub orig_bytes: u64,
    /// Stored payload bytes of the field datasets.
    pub stored_bytes: u64,
}

impl WriteReport {
    /// End-to-end compression ratio of the snapshot.
    pub fn compression_ratio(&self) -> f64 {
        self.orig_bytes as f64 / self.stored_bytes.max(1) as f64
    }

    /// Modeled (prep, io) seconds for the slowest rank under a PFS model.
    pub fn modeled_seconds(&self, params: &PfsParams) -> (f64, f64) {
        let prep = self.prep_seconds.iter().cloned().fold(0.0, f64::max);
        let io = job_seconds(&self.ledgers, params, self.nranks);
        (prep, io)
    }
}

/// Encode a u64 list as f64s (exact below 2⁵³) for metadata datasets.
pub(crate) fn ints_to_f64(vals: impl IntoIterator<Item = u64>) -> Vec<f64> {
    vals.into_iter().map(|v| v as f64).collect()
}

/// Write hierarchy-structure metadata (domains, boxes, owners, field
/// names) — the plotfile header AMReX also stores uncompressed.
pub(crate) fn write_metadata(writer: &H5Writer, h: &AmrHierarchy, extra: &[u64]) -> H5Result<()> {
    let nranks = h.level(0).data.distribution().nranks() as u64;
    let mut header: Vec<u64> = vec![h.num_levels() as u64, h.field_names().len() as u64, nranks];
    header.extend_from_slice(extra);
    for l in 0..h.num_levels() {
        let level = h.level(l);
        let n = level.domain.size();
        header.push(n.get(0) as u64);
        header.push(n.get(1) as u64);
        header.push(n.get(2) as u64);
        header.push(level.data.box_array().len() as u64);
        header.push(if l + 1 < h.num_levels() {
            h.ref_ratio(l) as u64
        } else {
            0
        });
    }
    let header_f = ints_to_f64(header);
    writer.write_dataset("meta/header", &header_f, header_f.len().max(1), &NoFilter)?;
    // Field names as UTF-8 bytes, each byte one f64.
    let mut names = Vec::new();
    for n in h.field_names() {
        names.push(n.len() as u64);
        names.extend(n.as_bytes().iter().map(|&b| b as u64));
    }
    let names_f = ints_to_f64(names);
    writer.write_dataset(
        "meta/field_names",
        &names_f,
        names_f.len().max(1),
        &NoFilter,
    )?;
    for l in 0..h.num_levels() {
        let level = h.level(l);
        let mut boxes = Vec::new();
        for (i, b) in level.data.box_array().iter().enumerate() {
            for d in 0..3 {
                boxes.push(b.lo.get(d) as u64);
            }
            for d in 0..3 {
                boxes.push(b.hi.get(d) as u64);
            }
            boxes.push(level.data.distribution().owner(i) as u64);
        }
        let boxes_f = ints_to_f64(boxes);
        writer.write_dataset(
            &format!("meta/level_{l}/boxes"),
            &boxes_f,
            boxes_f.len().max(1),
            &NoFilter,
        )?;
    }
    Ok(())
}

/// Dataset name for one level/field pair (fields addressed by index so
/// arbitrary names cannot collide with the path syntax). Public because
/// the read side — including the `amr-query` planner — addresses chunks
/// through the same naming.
pub fn field_dataset(level: usize, field: usize) -> String {
    format!("level_{level}/field_{field}")
}

/// One field's fully-staged write work for [`write_field_parallel`]: the
/// rank's chunks, the resolved filter, and the collective chunk geometry.
/// All metadata (global chunk size, absolute bound) is pre-computed, so
/// compression can run on pool workers while earlier fields' collective
/// writes are still in flight — the paper's one-pass write.
#[derive(Clone, Debug)]
pub struct FieldWriteJob {
    /// Dataset name (identical on every rank).
    pub name: String,
    /// This rank's chunks (the AMRIC layout stages exactly one per field;
    /// empty when no rank on the level holds data).
    pub chunks: Vec<ChunkData>,
    /// Collective chunk size in elements (max over ranks, pre-agreed).
    pub chunk_elems: usize,
    /// Resolved filter (global absolute bound baked in).
    pub filter: AmricFieldFilter,
    /// Standard vs size-aware filter semantics.
    pub mode: FilterMode,
}

/// Per-worker compression state of the field pipeline: an explicit
/// [`AmricScratch`] (quantization-stream buffers) plus the padding
/// staging buffer. One per pool worker — workers never contend on hot
/// buffers, and nothing rides on thread-local state.
#[derive(Default)]
struct FieldEncodeScratch {
    scratch: AmricScratch,
    pad: Vec<f64>,
}

/// Per-field accumulation while its frames stream to storage: the
/// receipt under construction, the chunk records already on disk, and
/// the batch of frames awaiting the next extent reservation.
struct FieldProgress {
    receipt: CollectiveReceipt,
    records: Vec<ChunkRecord>,
    batch: Vec<EncodedFrame>,
}

impl FieldProgress {
    fn new() -> Self {
        FieldProgress {
            receipt: CollectiveReceipt {
                dataset_creates: 1,
                ..Default::default()
            },
            records: Vec::new(),
            batch: Vec::new(),
        }
    }

    fn chunks_done(&self) -> usize {
        self.records.len() + self.batch.len()
    }
}

/// Write the batched frames into one pre-reserved contiguous extent,
/// folding them into the field's records and receipt.
fn flush_field_frames(writer: &H5Writer, progress: &mut FieldProgress) -> H5Result<()> {
    if progress.batch.is_empty() {
        return Ok(());
    }
    let plan = writer.reserve_extent(progress.batch.iter().map(|f| f.bytes.len() as u64));
    for (frame, &offset) in progress.batch.iter().zip(&plan.offsets) {
        writer.write_at(offset, &frame.bytes)?;
        progress.receipt.write_calls += 1;
        progress.receipt.bytes_written += frame.bytes.len() as u64;
        progress.records.push(ChunkRecord {
            offset,
            stored_bytes: frame.bytes.len() as u64,
            logical_elems: frame.logical_elems,
        });
    }
    progress.batch.clear();
    Ok(())
}

/// Batch-submission write API: compress every field's chunks on a
/// rank-local pool of `workers` threads and issue the collective writes
/// in field order, **overlapped** — while field `f`'s frames are inside
/// the collective commit (and peers may still be compressing), the pool
/// is already compressing fields `f+1, f+2, …` into the bounded
/// reassembly window. `workers <= 1` degrades to the serial reference
/// path with identical output bytes and identical collective sequence.
///
/// Frames stream to storage as they drain: each batch of `max(workers,
/// 2)` frames lands in one pre-reserved extent and only its small
/// [`ChunkRecord`]s are kept until the field's collective commit, so
/// memory in flight is bounded by the batch plus the reassembly window
/// regardless of how many chunks a field stages.
///
/// Every rank must pass the same field list (names, `chunk_elems`,
/// modes). The collective contract on errors: a rank whose compression
/// fails keeps participating in the remaining fields' collectives with an
/// abort vote, so peers fail together instead of deadlocking; the typed
/// error surfaces on every rank.
pub fn write_field_parallel(
    comm: &Communicator,
    writer: &H5Writer,
    jobs: &[FieldWriteJob],
    workers: usize,
) -> H5Result<Vec<CollectiveReceipt>> {
    // Flatten to (field, chunk) items so the pool load-balances across
    // fields regardless of how many chunks each one stages.
    let items: Vec<(usize, usize)> = jobs
        .iter()
        .enumerate()
        .flat_map(|(f, j)| (0..j.chunks.len()).map(move |c| (f, c)))
        .collect();

    let batch_size = workers.max(2);
    let mut receipts = Vec::with_capacity(jobs.len());
    // `written` = number of fields whose collective has *occurred*
    // (successfully or as a joint abort); the error path below must keep
    // the remaining fields' collectives running to stay in lockstep.
    let mut written = 0usize;
    let mut progress = FieldProgress::new();

    let pool_result: Result<(), H5Error> = rankpar::pool::for_each_ordered(
        &items,
        workers,
        // Double buffer: one batch in the writer's hands, one compressing.
        (2 * workers).max(2),
        FieldEncodeScratch::default,
        |state, _i, &(f, c)| {
            let job = &jobs[f];
            writer.count_filter_call();
            let t0 = Instant::now();
            let (data, logical_elems) =
                staged_chunk(&job.chunks[c], job.chunk_elems, job.mode, &mut state.pad)?;
            let mut bytes = Vec::new();
            job.filter
                .encode_with_scratch(data, &mut state.scratch, &mut bytes)?;
            Ok(EncodedFrame {
                bytes,
                logical_elems,
                encode_seconds: t0.elapsed().as_secs_f64(),
            })
        },
        |_i, frame| {
            // Frames arrive in submission order, so this frame belongs to
            // the first unwritten field that has chunks; commit any
            // zero-chunk fields ahead of it first so `progress` never
            // mixes fields.
            while let Some(job) = jobs.get(written) {
                if !job.chunks.is_empty() {
                    break;
                }
                written += 1;
                receipts.push(collective_finalize(
                    comm,
                    writer,
                    &job.name,
                    Vec::new(),
                    job.chunk_elems,
                    &job.filter,
                    job.mode,
                    None,
                    FieldProgress::new().receipt,
                )?);
            }
            let job = &jobs[written];
            progress.receipt.filter_calls += 1;
            progress.receipt.encode_seconds += frame.encode_seconds;
            progress.batch.push(frame);
            // Stream batches to storage so resident frames stay bounded
            // by the batch, not the field's chunk count.
            if progress.batch.len() >= batch_size {
                flush_field_frames(writer, &mut progress)?;
            }
            if progress.chunks_done() == job.chunks.len() {
                flush_field_frames(writer, &mut progress)?;
                let done = std::mem::replace(&mut progress, FieldProgress::new());
                written += 1; // the collective happens now, success or not
                receipts.push(collective_finalize(
                    comm,
                    writer,
                    &job.name,
                    done.records,
                    job.chunk_elems,
                    &job.filter,
                    job.mode,
                    None,
                    done.receipt,
                )?);
            }
            Ok(())
        },
    );

    let mut failure = pool_result.err();
    if failure.is_none() {
        // Trailing zero-chunk fields (or an entirely chunk-less level).
        while written < jobs.len() && jobs[written].chunks.is_empty() {
            let job = &jobs[written];
            written += 1;
            match collective_finalize(
                comm,
                writer,
                &job.name,
                Vec::new(),
                job.chunk_elems,
                &job.filter,
                job.mode,
                None,
                FieldProgress::new().receipt,
            ) {
                Ok(r) => receipts.push(r),
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
    }
    if let Some(e) = failure {
        // Stay in lockstep: peers will run every remaining field's
        // collective, so this rank must too — with an abort vote.
        for job in &jobs[written..] {
            let _ = collective_write_frames(
                comm,
                writer,
                &job.name,
                None,
                job.chunk_elems,
                &job.filter,
                job.mode,
            );
        }
        return Err(e);
    }
    debug_assert_eq!(written, jobs.len());
    Ok(receipts)
}

/// Write one snapshot with the full AMRIC pipeline. Returns the per-rank
/// cost report. The blocking factor `bf` must match the hierarchy's fine
/// grids (it drives unit sizes via [`unit_edge_for_level`]).
pub fn write_amric(
    path: impl AsRef<std::path::Path>,
    h: &AmrHierarchy,
    cfg: &AmricConfig,
    bf: i64,
) -> H5Result<WriteReport> {
    write_amric_to(Arc::new(H5Writer::create(path)?), h, cfg, bf)
}

/// [`write_amric`] into a sharded container at `path` (a directory)
/// spread over `shards` shard files — concurrent rank writers and later
/// parallel prefetch hit independent shards.
pub fn write_amric_sharded(
    path: impl AsRef<std::path::Path>,
    shards: usize,
    h: &AmrHierarchy,
    cfg: &AmricConfig,
    bf: i64,
) -> H5Result<WriteReport> {
    write_amric_to(
        Arc::new(H5Writer::create_sharded(path, shards)?),
        h,
        cfg,
        bf,
    )
}

/// The backend-agnostic AMRIC pipeline: runs the rank collectives against
/// an already-created writer (any [`h5lite::Storage`] backend) and
/// finishes the container.
pub fn write_amric_to(
    writer: Arc<H5Writer>,
    h: &AmrHierarchy,
    cfg: &AmricConfig,
    bf: i64,
) -> H5Result<WriteReport> {
    let nranks = h.level(0).data.distribution().nranks();
    let num_levels = h.num_levels();
    let nfields = h.field_names().len();

    type RankOutcome = (IoLedger, f64, Vec<Option<crate::preprocess::PlanExtent>>);
    let per_rank: Vec<RankOutcome> = run_ranks(nranks, |comm| {
        let rank = comm.rank();
        let mut ledger = IoLedger::default();
        let mut prep_s = 0.0;
        // Per-level bounding box of this rank's units — the extent the
        // chunk index persists, collected here so the index costs no
        // second planning pass.
        let mut extents = Vec::with_capacity(num_levels);
        for l in 0..num_levels {
            let level = &h.level(l).data;
            let finer =
                (l + 1 < num_levels).then(|| (h.level(l + 1).data.box_array(), h.ref_ratio(l)));
            let unit = unit_edge_for_level(bf, l, num_levels);
            let t0 = Instant::now();
            let units = plan_units(level, finer, unit, rank, cfg.remove_redundancy);
            extents.push(crate::preprocess::plan_bounding_box(&units));
            prep_s += t0.elapsed().as_secs_f64();
            // Pass 1 — stage every field and pre-compute the write
            // metadata (global bound + global chunk size) in one
            // deterministic collective sequence. With the metadata known
            // up front, pass 2 can overlap compression with the writes
            // (the paper's one-pass write).
            let mut jobs = Vec::with_capacity(nfields);
            for f in 0..nfields {
                // Stage field-major (§3.3 Solution 1): this rank's units of
                // one field, concatenated.
                let t0 = Instant::now();
                let bufs = extract_units(level, &units, f);
                let mut staged = Vec::with_capacity(bufs.iter().map(|b| b.dims().len()).sum());
                for b in &bufs {
                    staged.extend_from_slice(b.data());
                }
                prep_s += t0.elapsed().as_secs_f64();
                // Resolve the relative bound against the field's global
                // range on this level (allreduce over ranks).
                let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                for &v in &staged {
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
                let ranges = comm.allgather((lo, hi));
                let glo = ranges.iter().map(|r| r.0).fold(f64::INFINITY, f64::min);
                let ghi = ranges.iter().map(|r| r.1).fold(f64::NEG_INFINITY, f64::max);
                let range = if ghi > glo { ghi - glo } else { 0.0 };
                // Constant (range-0) fields fall back to the raw relative
                // value — same contract as `resolve_abs_eb`, so quiet
                // ranks get a well-defined, non-degenerate bound. Under an
                // adaptive policy both tight and loose resolve against the
                // same global range.
                let filter = AmricFieldFilter {
                    cfg: *cfg,
                    unit_edge: unit as usize,
                    bound: ResolvedBound::from_policy(cfg.bound, cfg.rel_eb, range),
                };
                // Global chunk = biggest rank (§3.3 Solution 2).
                let chunk_elems = comm.allreduce_max(staged.len() as u64) as usize;
                let mode = if cfg.size_aware_filter {
                    FilterMode::SizeAware
                } else {
                    FilterMode::Standard
                };
                let chunks = if chunk_elems == 0 {
                    Vec::new()
                } else {
                    vec![ChunkData::full(staged)]
                };
                jobs.push(FieldWriteJob {
                    name: field_dataset(l, f),
                    chunks,
                    chunk_elems: chunk_elems.max(1),
                    filter,
                    mode,
                });
            }
            // Pass 2 — compress on the rank-local pool, write in field
            // order; serial when the config says so.
            let receipts = write_field_parallel(&comm, &writer, &jobs, cfg.parallelism.workers())
                .expect("collective write failed");
            for receipt in &receipts {
                fold_receipt(&mut ledger, receipt);
            }
        }
        if rank == 0 {
            write_metadata(&writer, h, &[bf as u64, u64::from(cfg.remove_redundancy)])
                .expect("metadata write failed");
        }
        comm.barrier();
        (ledger, prep_s, extents)
    });

    let rank_extents: Vec<&[Option<crate::preprocess::PlanExtent>]> =
        per_rank.iter().map(|(_, _, e)| e.as_slice()).collect();
    write_chunk_indexes(&writer, num_levels, nfields, &rank_extents)?;
    writer.finish()?;
    let (ledgers, prep_seconds): (Vec<IoLedger>, Vec<f64>) = per_rank
        .iter()
        .map(|(ledger, prep, _)| (*ledger, *prep))
        .unzip();
    let stored = ledgers.iter().map(|l| l.bytes_written).sum();
    Ok(WriteReport {
        nranks,
        ledgers,
        prep_seconds,
        orig_bytes: h.snapshot_bytes(),
        stored_bytes: stored,
    })
}

/// Persist the per-dataset chunk index for every field dataset: one entry
/// per rank chunk carrying the stream's codec id and the bounding box of
/// the rank's surviving unit blocks on that level (`rank_extents[rank]
/// [level]`, collected by the rank closures during planning — no second
/// planning pass). The `amr-query` planner prunes chunks against a
/// region of interest from these extents without decoding anything;
/// files written before this index existed are still served through the
/// reader's fallback scan.
fn write_chunk_indexes(
    writer: &H5Writer,
    num_levels: usize,
    nfields: usize,
    rank_extents: &[&[Option<crate::preprocess::PlanExtent>]],
) -> H5Result<()> {
    for l in 0..num_levels {
        // A level where no rank kept any cells registers zero chunks;
        // otherwise every rank contributed exactly one.
        let entries: Vec<ChunkIndexEntry> = if rank_extents.iter().all(|e| e[l].is_none()) {
            Vec::new()
        } else {
            rank_extents
                .iter()
                .map(|e| ChunkIndexEntry::new(sz_codec::codec::CodecId::AmricPipeline as u32, e[l]))
                .collect()
        };
        for f in 0..nfields {
            writer.set_chunk_index(&field_dataset(l, f), ChunkIndex::new(entries.clone()))?;
        }
    }
    Ok(())
}

/// Fold a collective receipt into a rank ledger (encode time counts as
/// measured compute inside the I/O phase, matching the paper's breakdown).
pub(crate) fn fold_receipt(ledger: &mut IoLedger, r: &CollectiveReceipt) {
    ledger.filter_calls += r.filter_calls;
    ledger.write_calls += r.write_calls;
    ledger.bytes_written += r.bytes_written;
    ledger.dataset_creates += r.dataset_creates;
    ledger.add_measured_compute(r.encode_seconds);
}

#[cfg(test)]
mod tests {
    use super::*;
    use amr_apps::prelude::*;

    /// Run the full pipeline into an in-memory container and reopen it —
    /// no filesystem, nothing to leak on panic.
    fn write_mem(h: &AmrHierarchy, cfg: &AmricConfig, bf: i64) -> (WriteReport, H5Reader) {
        let (w, mem) = H5Writer::in_memory();
        let report = write_amric_to(Arc::new(w), h, cfg, bf).unwrap();
        (report, H5Reader::from_storage(Box::new(mem)).unwrap())
    }

    fn small_nyx() -> AmrHierarchy {
        let s = NyxScenario::new(11);
        let cfg = AmrRunConfig {
            coarse_dims: (16, 16, 16),
            max_grid_size: 8,
            blocking_factor: 8,
            nranks: 2,
            num_levels: 2,
            fine_fraction: 0.05,
            grid_eff: 0.7,
        };
        build_hierarchy(&s, &cfg, 0.0)
    }

    #[test]
    fn amric_write_produces_compressed_file() {
        let h = small_nyx();
        let (report, r) = write_mem(&h, &AmricConfig::lr(1e-3), 8);
        assert_eq!(report.nranks, 2);
        assert!(
            report.compression_ratio() > 2.0,
            "CR {}",
            report.compression_ratio()
        );
        // One filter call per (rank-with-data, level, field).
        let total_filters: u64 = report.ledgers.iter().map(|l| l.filter_calls).sum();
        assert!(total_filters <= 2 * 2 * 6);
        assert!(r.dataset_names().contains(&"level_0/field_0"));
        assert!(r.dataset_names().contains(&"meta/header"));
    }

    #[test]
    fn interp_variant_writes() {
        let h = small_nyx();
        let (report, _) = write_mem(&h, &AmricConfig::interp(1e-3), 8);
        assert!(report.compression_ratio() > 2.0);
    }

    #[test]
    fn filter_roundtrip_standalone() {
        // Bound = rel bound × data range used below.
        let filter = AmricFieldFilter::fixed(AmricConfig::lr(1e-3), 4, 1e-3 * 3.2);
        let mut chunk = Vec::new();
        for u in 0..5 {
            for i in 0..64 {
                chunk.push((u * 64 + i) as f64 * 0.01);
            }
        }
        let enc = filter.encode(&chunk).unwrap();
        let dec = filter.decode(&enc, chunk.len()).unwrap();
        let range = chunk.len() as f64 * 0.01;
        for (o, r) in chunk.iter().zip(&dec) {
            assert!((o - r).abs() <= 1e-3 * range + 1e-12);
        }
    }

    #[test]
    fn filter_rejects_non_unit_multiple_chunks() {
        // Regression: a chunk whose length is not a multiple of the unit
        // volume must surface as a typed error, not an assert panic.
        let filter = AmricFieldFilter::fixed(AmricConfig::lr(1e-3), 4, 1e-3);
        let chunk = vec![0.0; 63]; // 4³ = 64 ∤ 63
        let err = filter.encode(&chunk).unwrap_err();
        assert!(
            matches!(err.as_codec(), Some(CodecError::DimsMismatch { .. })),
            "{err:?}"
        );
        let mut out = vec![0xAAu8; 3];
        assert!(filter.encode_into(&chunk, &mut out).is_err());
        // A zero unit edge is equally rejected (no division-by-zero path).
        let zero = AmricFieldFilter {
            unit_edge: 0,
            ..filter
        };
        assert!(zero.encode(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn parallel_write_is_byte_identical_to_serial() {
        // The tentpole invariant at the writer level: every dataset's
        // stored chunk bytes match between the serial path and the
        // overlapped pool path, for both codec families.
        let h = small_nyx();
        for (tag, cfg) in [
            ("lr", AmricConfig::lr(1e-3)),
            ("interp", AmricConfig::interp(1e-3)),
        ] {
            let (rs, a) = write_mem(&h, &cfg, 8);
            let (rp, b) = write_mem(&h, &cfg.with_workers(4), 8);
            assert_eq!(rs.stored_bytes, rp.stored_bytes, "{tag}");
            assert_eq!(a.dataset_names(), b.dataset_names(), "{tag}");
            for name in a.dataset_names() {
                let (ma, mb) = (a.meta(name).unwrap(), b.meta(name).unwrap());
                assert_eq!(ma.chunks.len(), mb.chunks.len(), "{tag}/{name}");
                for i in 0..ma.chunks.len() {
                    assert_eq!(
                        a.read_chunk_raw(name, i).unwrap(),
                        b.read_chunk_raw(name, i).unwrap(),
                        "{tag}/{name} chunk {i} bytes differ"
                    );
                }
            }
        }
    }

    #[test]
    fn field_jobs_with_leading_and_trailing_empty_fields() {
        // Zero-chunk fields before, between, and after chunked fields
        // must all register (the flush logic has to ride them along).
        let (writer, mem) = H5Writer::in_memory();
        let writer = Arc::new(writer);
        let w = Arc::clone(&writer);
        let filter = AmricFieldFilter::fixed(AmricConfig::lr(1e-3), 4, 1e-3);
        let receipts = rankpar::run_ranks(2, move |comm| {
            let mk = |f: usize, chunks: Vec<ChunkData>| FieldWriteJob {
                name: format!("f{f}"),
                chunks,
                chunk_elems: 128,
                filter,
                mode: FilterMode::SizeAware,
            };
            let data: Vec<f64> = (0..128).map(|i| (i as f64 * 0.03).sin()).collect();
            let jobs = vec![
                mk(0, Vec::new()),
                mk(1, vec![ChunkData::full(data.clone())]),
                mk(2, Vec::new()),
                mk(3, vec![ChunkData::full(data)]),
                mk(4, Vec::new()),
            ];
            write_field_parallel(&comm, &w, &jobs, 3).unwrap()
        });
        for r in &receipts {
            assert_eq!(r.len(), 5);
        }
        writer.finish().unwrap();
        let rd = H5Reader::from_storage(Box::new(mem)).unwrap();
        assert_eq!(rd.dataset_names(), vec!["f0", "f1", "f2", "f3", "f4"]);
        assert_eq!(rd.meta("f0").unwrap().chunks.len(), 0);
        assert_eq!(rd.meta("f1").unwrap().chunks.len(), 2);
    }

    #[test]
    fn multi_chunk_field_streams_batches_and_matches_serial() {
        // A field staging many chunks per rank: frames must stream to
        // storage in batches (bounded memory) and still produce the same
        // stored chunk bytes, in rank-major chunk order, as workers=1.
        let filter = AmricFieldFilter::fixed(AmricConfig::lr(1e-3), 4, 1e-3);
        let chunk = |rank: usize, c: usize| {
            ChunkData::full(
                (0..128)
                    .map(|i| ((rank * 2048 + c * 128 + i) as f64 * 0.011).sin())
                    .collect(),
            )
        };
        let write = |workers: usize| {
            let (writer, mem) = H5Writer::in_memory();
            let writer = Arc::new(writer);
            let w = Arc::clone(&writer);
            let receipts = rankpar::run_ranks(2, move |comm| {
                let jobs = vec![FieldWriteJob {
                    name: "many".into(),
                    chunks: (0..11).map(|c| chunk(comm.rank(), c)).collect(),
                    chunk_elems: 128,
                    filter,
                    mode: FilterMode::SizeAware,
                }];
                write_field_parallel(&comm, &w, &jobs, workers).unwrap()
            });
            writer.finish().unwrap();
            (receipts, H5Reader::from_storage(Box::new(mem)).unwrap())
        };
        let (r1, a) = write(1);
        let (r4, b) = write(4);
        for (rs, rp) in r1.iter().zip(&r4) {
            assert_eq!(rs[0].filter_calls, 11);
            assert_eq!(rp[0].filter_calls, 11);
            assert_eq!(rs[0].bytes_written, rp[0].bytes_written);
        }
        let (ma, mb) = (a.meta("many").unwrap(), b.meta("many").unwrap());
        assert_eq!(ma.chunks.len(), 22);
        assert_eq!(mb.chunks.len(), 22);
        for i in 0..22 {
            assert_eq!(
                a.read_chunk_raw("many", i).unwrap(),
                b.read_chunk_raw("many", i).unwrap(),
                "chunk {i}"
            );
            assert_eq!(ma.chunks[i].logical_elems, mb.chunks[i].logical_elems);
        }
    }

    #[test]
    fn modeled_seconds_monotone_in_scale() {
        let h = small_nyx();
        let (report, _) = write_mem(&h, &AmricConfig::lr(1e-3), 8);
        let params = PfsParams::default();
        let (_, io) = report.modeled_seconds(&params);
        assert!(io > 0.0);
    }
}
