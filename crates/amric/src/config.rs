//! AMRIC configuration: compressor choice, error bounds, and the ablation
//! switches for every design decision §3 of the paper introduces.

use sz_codec::SzAlgorithm;

/// How unit blocks are merged before SZ sees them (paper §3.1–3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MergePolicy {
    /// Linear merging (LM): stack unit blocks along z and compress as one
    /// domain — predictions cross unit boundaries (the baseline AMRIC
    /// improves on, Fig. 6 right).
    LinearMerge,
    /// Shared Lossless Encoding (SLE): predict each unit independently,
    /// encode together under one Huffman tree (§3.2 Solution 1).
    SharedEncoding,
}

/// Full AMRIC pipeline configuration.
#[derive(Clone, Copy, Debug)]
pub struct AmricConfig {
    /// Which SZ algorithm compresses the arranged data.
    pub algorithm: SzAlgorithm,
    /// Value-range-relative error bound, resolved per field per rank
    /// (the paper's Table 1 bounds).
    pub rel_eb: f64,
    /// Merge policy for SZ_L/R (ignored by SZ_Interp).
    pub merge: MergePolicy,
    /// Adaptive SZ block size per Equation 1 (§3.2 Solution 2). When
    /// false, stock 6³ blocks are used regardless of unit size.
    pub adaptive_block_size: bool,
    /// Cluster (cube-like) arrangement for SZ_Interp (§3.1, Fig. 5).
    /// When false, unit blocks are arranged linearly.
    pub cluster_arrangement: bool,
    /// Remove coarse data covered by finer levels (§3.1). Disabling keeps
    /// the redundant cells (ablation).
    pub remove_redundancy: bool,
    /// Pass actual per-rank data sizes to the HDF5 filter (§3.3
    /// Solution 2). When false, ranks pad to the global chunk size.
    pub size_aware_filter: bool,
}

impl AmricConfig {
    /// The paper's AMRIC(SZ_L/R) configuration.
    pub fn lr(rel_eb: f64) -> Self {
        AmricConfig {
            algorithm: SzAlgorithm::LorenzoRegression,
            rel_eb,
            merge: MergePolicy::SharedEncoding,
            adaptive_block_size: true,
            cluster_arrangement: false,
            remove_redundancy: true,
            size_aware_filter: true,
        }
    }

    /// The paper's AMRIC(SZ_Interp) configuration.
    pub fn interp(rel_eb: f64) -> Self {
        AmricConfig {
            algorithm: SzAlgorithm::Interpolation,
            rel_eb,
            merge: MergePolicy::SharedEncoding,
            adaptive_block_size: false,
            cluster_arrangement: true,
            remove_redundancy: true,
            size_aware_filter: true,
        }
    }

    /// SZ block size for a given unit edge under this config.
    pub fn sz_block_size(&self, unit_edge: usize) -> usize {
        if self.adaptive_block_size {
            sz_codec::adaptive::adaptive_block_size(unit_edge)
        } else {
            6
        }
    }
}

/// AMReX-baseline configuration (the paper's comparison target): 1-D SZ
/// through small standard-mode chunks on the interleaved layout.
#[derive(Clone, Copy, Debug)]
pub struct BaselineConfig {
    /// Value-range-relative error bound.
    pub rel_eb: f64,
    /// HDF5 chunk size in elements (1024 in stock AMReX; the paper bumps
    /// WarpX_3 to 4096).
    pub chunk_elems: usize,
}

impl BaselineConfig {
    /// Stock AMReX compression settings.
    pub fn new(rel_eb: f64) -> Self {
        BaselineConfig {
            rel_eb,
            chunk_elems: 1024,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper() {
        let lr = AmricConfig::lr(1e-3);
        assert_eq!(lr.algorithm, SzAlgorithm::LorenzoRegression);
        assert!(lr.adaptive_block_size);
        assert_eq!(lr.merge, MergePolicy::SharedEncoding);
        assert!(lr.remove_redundancy && lr.size_aware_filter);
        let it = AmricConfig::interp(1e-3);
        assert_eq!(it.algorithm, SzAlgorithm::Interpolation);
        assert!(it.cluster_arrangement);
    }

    #[test]
    fn sz_block_size_follows_eq1_when_adaptive() {
        let cfg = AmricConfig::lr(1e-3);
        assert_eq!(cfg.sz_block_size(8), 4);
        assert_eq!(cfg.sz_block_size(16), 6);
        let mut fixed = cfg;
        fixed.adaptive_block_size = false;
        assert_eq!(fixed.sz_block_size(8), 6);
    }
}
