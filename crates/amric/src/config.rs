//! AMRIC configuration: compressor choice, error bounds, and the ablation
//! switches for every design decision §3 of the paper introduces.
//!
//! Both config structs are `#[non_exhaustive]` with builder-style
//! `with_*` setters, so future ablation switches can be added without a
//! breaking change: start from a paper preset ([`AmricConfig::lr`] /
//! [`AmricConfig::interp`] / [`BaselineConfig::new`]) and chain the
//! switches you want to flip.
//!
//! ```
//! use amric::config::{AmricConfig, MergePolicy};
//!
//! let ablated = AmricConfig::lr(1e-3)
//!     .with_merge(MergePolicy::LinearMerge)
//!     .with_adaptive_block_size(false);
//! assert_eq!(ablated.merge, MergePolicy::LinearMerge);
//! ```

use sz_codec::SzAlgorithm;

/// How many compression workers the writer's rank-local pool runs — the
/// overlap policy of the parallel write path.
///
/// `Serial` is the reference path (compress, then write, one chunk at a
/// time). `Workers(n)` compresses on `n` pool threads per rank while the
/// collective writes are in flight; output streams are byte-identical to
/// `Serial` for every codec family (enforced by the
/// `parallel_determinism` suite).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteParallelism {
    /// One thread per rank: compress chunk, write chunk, repeat.
    Serial,
    /// A rank-local pool of `n ≥ 2` workers overlapping compression with
    /// the collective writes.
    Workers(usize),
}

impl WriteParallelism {
    /// Policy for a requested worker count (`n <= 1` means serial).
    pub fn from_workers(n: usize) -> Self {
        if n <= 1 {
            WriteParallelism::Serial
        } else {
            WriteParallelism::Workers(n)
        }
    }

    /// Effective worker count (serial = 1).
    pub fn workers(self) -> usize {
        match self {
            WriteParallelism::Serial => 1,
            WriteParallelism::Workers(n) => n,
        }
    }
}

/// How the writer spends the error budget across unit blocks.
///
/// `Fixed` is the paper's behavior: one absolute bound per (level, field),
/// resolved from the configured relative bound against the global value
/// range. `GradientAdaptive` scores each unit block's gradient activity
/// during the pre-process pass and gives rough (high-gradient) units the
/// `tight` bound and smooth units the `loose` one — the quality-per-byte
/// trade the visualization follow-up work evaluates. Both bounds are
/// value-range-relative, like [`AmricConfig::rel_eb`], and the bound each
/// unit actually used is recorded in the stream (the
/// [`sz_codec::codec::FLAG_UNIT_BOUNDS`] envelope bit) so decoders and
/// quality metrics can recover it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BoundPolicy {
    /// One uniform bound per (level, field) — the paper's configuration.
    Fixed,
    /// Per-unit bounds picked by gradient activity: `tight` for rough
    /// units, `loose` for smooth ones (both value-range-relative).
    GradientAdaptive {
        /// Relative bound for high-gradient (rough) units.
        tight: f64,
        /// Relative bound for smooth units; must be `>= tight`.
        loose: f64,
    },
}

/// How unit blocks are merged before SZ sees them (paper §3.1–3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MergePolicy {
    /// Linear merging (LM): stack unit blocks along z and compress as one
    /// domain — predictions cross unit boundaries (the baseline AMRIC
    /// improves on, Fig. 6 right).
    LinearMerge,
    /// Shared Lossless Encoding (SLE): predict each unit independently,
    /// encode together under one Huffman tree (§3.2 Solution 1).
    SharedEncoding,
}

/// Full AMRIC pipeline configuration.
#[derive(Clone, Copy, Debug)]
#[non_exhaustive]
pub struct AmricConfig {
    /// Which SZ algorithm compresses the arranged data.
    pub algorithm: SzAlgorithm,
    /// Value-range-relative error bound, resolved per field per rank
    /// (the paper's Table 1 bounds).
    pub rel_eb: f64,
    /// Merge policy for SZ_L/R (ignored by SZ_Interp).
    pub merge: MergePolicy,
    /// Adaptive SZ block size per Equation 1 (§3.2 Solution 2). When
    /// false, stock 6³ blocks are used regardless of unit size.
    pub adaptive_block_size: bool,
    /// Cluster (cube-like) arrangement for SZ_Interp (§3.1, Fig. 5).
    /// When false, unit blocks are arranged linearly.
    pub cluster_arrangement: bool,
    /// Remove coarse data covered by finer levels (§3.1). Disabling keeps
    /// the redundant cells (ablation).
    pub remove_redundancy: bool,
    /// Pass actual per-rank data sizes to the HDF5 filter (§3.3
    /// Solution 2). When false, ranks pad to the global chunk size.
    pub size_aware_filter: bool,
    /// Rank-local compression parallelism for the write path (overlap of
    /// compression with the collective writes). Does not affect the
    /// compressed streams — parallel output is byte-identical to serial.
    pub parallelism: WriteParallelism,
    /// Error-bound policy: one uniform bound ([`BoundPolicy::Fixed`],
    /// paper behavior, byte-identical to pre-policy streams) or per-unit
    /// gradient-adaptive bounds. Under `GradientAdaptive` the `rel_eb`
    /// field is ignored in favor of the policy's tight/loose pair.
    pub bound: BoundPolicy,
}

impl AmricConfig {
    /// The paper's AMRIC(SZ_L/R) configuration.
    pub fn lr(rel_eb: f64) -> Self {
        AmricConfig {
            algorithm: SzAlgorithm::LorenzoRegression,
            rel_eb,
            merge: MergePolicy::SharedEncoding,
            adaptive_block_size: true,
            cluster_arrangement: false,
            remove_redundancy: true,
            size_aware_filter: true,
            parallelism: WriteParallelism::Serial,
            bound: BoundPolicy::Fixed,
        }
    }

    /// The paper's AMRIC(SZ_Interp) configuration.
    pub fn interp(rel_eb: f64) -> Self {
        AmricConfig {
            algorithm: SzAlgorithm::Interpolation,
            rel_eb,
            merge: MergePolicy::SharedEncoding,
            adaptive_block_size: false,
            cluster_arrangement: true,
            remove_redundancy: true,
            size_aware_filter: true,
            parallelism: WriteParallelism::Serial,
            bound: BoundPolicy::Fixed,
        }
    }

    /// Set the SZ algorithm.
    pub fn with_algorithm(mut self, algorithm: SzAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Set the value-range-relative error bound.
    pub fn with_rel_eb(mut self, rel_eb: f64) -> Self {
        self.rel_eb = rel_eb;
        self
    }

    /// Set the SZ_L/R merge policy (ablation switch).
    pub fn with_merge(mut self, merge: MergePolicy) -> Self {
        self.merge = merge;
        self
    }

    /// Toggle the adaptive SZ block size (ablation switch).
    pub fn with_adaptive_block_size(mut self, on: bool) -> Self {
        self.adaptive_block_size = on;
        self
    }

    /// Toggle the cluster arrangement for SZ_Interp (ablation switch).
    pub fn with_cluster_arrangement(mut self, on: bool) -> Self {
        self.cluster_arrangement = on;
        self
    }

    /// Toggle coarse-redundancy removal (ablation switch).
    pub fn with_remove_redundancy(mut self, on: bool) -> Self {
        self.remove_redundancy = on;
        self
    }

    /// Toggle the size-aware HDF5 filter (ablation switch).
    pub fn with_size_aware_filter(mut self, on: bool) -> Self {
        self.size_aware_filter = on;
        self
    }

    /// Set the rank-local compression worker count for the write path
    /// (`n <= 1` selects the serial reference path).
    pub fn with_workers(mut self, n: usize) -> Self {
        self.parallelism = WriteParallelism::from_workers(n);
        self
    }

    /// Set the write-path parallelism policy directly.
    pub fn with_parallelism(mut self, parallelism: WriteParallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Set the error-bound policy. `GradientAdaptive` bounds are
    /// value-range-relative and must satisfy `0 < tight <= loose`.
    pub fn with_bound_policy(mut self, bound: BoundPolicy) -> Self {
        if let BoundPolicy::GradientAdaptive { tight, loose } = bound {
            assert!(
                tight > 0.0 && tight.is_finite() && loose >= tight && loose.is_finite(),
                "adaptive bounds need 0 < tight <= loose"
            );
        }
        self.bound = bound;
        self
    }

    /// SZ block size for a given unit edge under this config.
    pub fn sz_block_size(&self, unit_edge: usize) -> usize {
        if self.adaptive_block_size {
            sz_codec::adaptive::adaptive_block_size(unit_edge)
        } else {
            6
        }
    }
}

/// AMReX-baseline configuration (the paper's comparison target): 1-D SZ
/// through small standard-mode chunks on the interleaved layout.
#[derive(Clone, Copy, Debug)]
#[non_exhaustive]
pub struct BaselineConfig {
    /// Value-range-relative error bound.
    pub rel_eb: f64,
    /// HDF5 chunk size in elements (1024 in stock AMReX; the paper bumps
    /// WarpX_3 to 4096).
    pub chunk_elems: usize,
}

impl BaselineConfig {
    /// Stock AMReX compression settings.
    pub fn new(rel_eb: f64) -> Self {
        BaselineConfig {
            rel_eb,
            chunk_elems: 1024,
        }
    }

    /// Set the value-range-relative error bound.
    pub fn with_rel_eb(mut self, rel_eb: f64) -> Self {
        self.rel_eb = rel_eb;
        self
    }

    /// Set the HDF5 chunk size in elements.
    pub fn with_chunk_elems(mut self, chunk_elems: usize) -> Self {
        self.chunk_elems = chunk_elems;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper() {
        let lr = AmricConfig::lr(1e-3);
        assert_eq!(lr.algorithm, SzAlgorithm::LorenzoRegression);
        assert!(lr.adaptive_block_size);
        assert_eq!(lr.merge, MergePolicy::SharedEncoding);
        assert!(lr.remove_redundancy && lr.size_aware_filter);
        assert_eq!(lr.parallelism, WriteParallelism::Serial);
        let it = AmricConfig::interp(1e-3);
        assert_eq!(it.algorithm, SzAlgorithm::Interpolation);
        assert!(it.cluster_arrangement);
    }

    #[test]
    fn workers_builder_and_policy() {
        for n in [0, 1] {
            let cfg = AmricConfig::lr(1e-3).with_workers(n);
            assert_eq!(cfg.parallelism, WriteParallelism::Serial);
            assert_eq!(cfg.parallelism.workers(), 1);
        }
        let cfg = AmricConfig::lr(1e-3).with_workers(4);
        assert_eq!(cfg.parallelism, WriteParallelism::Workers(4));
        assert_eq!(cfg.parallelism.workers(), 4);
        let direct = AmricConfig::interp(1e-3).with_parallelism(WriteParallelism::Workers(2));
        assert_eq!(direct.parallelism.workers(), 2);
        assert_eq!(
            WriteParallelism::from_workers(7),
            WriteParallelism::Workers(7)
        );
    }

    #[test]
    fn builders_flip_every_switch() {
        let cfg = AmricConfig::lr(1e-3)
            .with_algorithm(SzAlgorithm::Interpolation)
            .with_rel_eb(1e-4)
            .with_merge(MergePolicy::LinearMerge)
            .with_adaptive_block_size(false)
            .with_cluster_arrangement(true)
            .with_remove_redundancy(false)
            .with_size_aware_filter(false);
        assert_eq!(cfg.algorithm, SzAlgorithm::Interpolation);
        assert_eq!(cfg.rel_eb, 1e-4);
        assert_eq!(cfg.merge, MergePolicy::LinearMerge);
        assert!(!cfg.adaptive_block_size);
        assert!(cfg.cluster_arrangement);
        assert!(!cfg.remove_redundancy);
        assert!(!cfg.size_aware_filter);
        let base = BaselineConfig::new(1e-2)
            .with_chunk_elems(4096)
            .with_rel_eb(5e-3);
        assert_eq!(base.chunk_elems, 4096);
        assert_eq!(base.rel_eb, 5e-3);
    }

    #[test]
    fn sz_block_size_follows_eq1_when_adaptive() {
        let cfg = AmricConfig::lr(1e-3);
        assert_eq!(cfg.sz_block_size(8), 4);
        assert_eq!(cfg.sz_block_size(16), 6);
        let fixed = cfg.with_adaptive_block_size(false);
        assert_eq!(fixed.sz_block_size(8), 6);
    }
}
