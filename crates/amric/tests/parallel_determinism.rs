//! Determinism matrix for the parallel compression engine: for every
//! codec family × worker count × chunk count, the pool's streams must be
//! **byte-identical** to the serial `compress_into` path, and every
//! stream must round-trip through `decompress_auto`.
//!
//! This is the invariant that makes the overlapped write path safe to
//! ship: turning on `with_workers(n)` may change wall-clock, never bytes.

use amr_mesh::prelude::IntVect;
use amric::codec::{AmricCodec, BaselineCodec, TacCodec, ZmeshCodec};
use amric::parallel::compress_chunks_parallel;
use amric::prelude::*;
use sz_codec::codec::Codec;
use sz_codec::prelude::*;

/// Units per chunk — fixed because TAC/zMesh carry one origin per unit.
const UNITS_PER_CHUNK: usize = 3;
const EDGE: usize = 6;

/// Deterministic, per-chunk-distinct unit data (mixed smooth + offset so
/// every family exercises its real code paths).
fn make_chunks(n: usize) -> Vec<Vec<Buffer3>> {
    (0..n)
        .map(|c| {
            (0..UNITS_PER_CHUNK)
                .map(|u| {
                    let mut b = Buffer3::zeros(Dims3::cube(EDGE));
                    b.fill_with(|i, j, k| {
                        ((i as f64 * 0.7 + c as f64 * 1.3).sin() * (u + 1) as f64)
                            + (j + 2 * k) as f64 * 0.04
                            + c as f64 * 0.5
                    });
                    b
                })
                .collect()
        })
        .collect()
}

fn origins() -> Vec<IntVect> {
    (0..UNITS_PER_CHUNK as i64)
        .map(|u| IntVect::new(u * EDGE as i64, 0, 0))
        .collect()
}

/// Every codec family in the workspace, behind the unified trait.
fn families() -> Vec<(&'static str, Box<dyn Codec>)> {
    vec![
        (
            "sz-lr",
            Box::new(sz_codec::lr::LrCodec::new(LrConfig::new(1e-3))) as Box<dyn Codec>,
        ),
        (
            "sz-interp",
            Box::new(sz_codec::interp::InterpCodec::new(InterpConfig::new(1e-3))),
        ),
        (
            "amric-lr",
            Box::new(AmricCodec::new(AmricConfig::lr(1e-3), EDGE)),
        ),
        (
            "amric-interp",
            Box::new(AmricCodec::new(AmricConfig::interp(1e-3), EDGE)),
        ),
        ("tac", Box::new(TacCodec::new(1e-3, origins()))),
        ("zmesh", Box::new(ZmeshCodec::new(1e-3, origins()))),
        (
            "amrex-baseline",
            Box::new(BaselineCodec::new(BaselineConfig::new(1e-3))),
        ),
    ]
}

#[test]
fn parallel_streams_are_byte_identical_to_serial() {
    for (name, codec) in families() {
        for workers in [1usize, 2, 4, 7] {
            // Chunk counts: empty, single, exactly the pool width, and
            // more chunks than workers (forces stealing + reassembly).
            for nchunks in [0usize, 1, workers, 2 * workers + 3] {
                let chunks = make_chunks(nchunks);
                // Serial reference: plain compress_into, one stream per
                // chunk, shared output buffer reuse like the hot path.
                let mut serial: Vec<Vec<u8>> = Vec::with_capacity(nchunks);
                for units in &chunks {
                    let mut out = Vec::new();
                    codec.compress_into(units, &mut out).unwrap();
                    serial.push(out);
                }
                let parallel = compress_chunks_parallel(codec.as_ref(), &chunks, workers).unwrap();
                assert_eq!(
                    serial, parallel,
                    "{name}: workers={workers} chunks={nchunks} streams differ"
                );
            }
        }
    }
}

#[test]
fn parallel_streams_round_trip_through_decompress_auto() {
    for (name, codec) in families() {
        let chunks = make_chunks(9);
        let streams = compress_chunks_parallel(codec.as_ref(), &chunks, 4).unwrap();
        assert_eq!(streams.len(), chunks.len());
        for (c, (units, stream)) in chunks.iter().zip(&streams).enumerate() {
            let back = decompress_auto(stream)
                .unwrap_or_else(|e| panic!("{name} chunk {c}: decompress_auto failed: {e:?}"));
            assert_eq!(back.len(), units.len(), "{name} chunk {c} unit count");
            for (o, r) in units.iter().zip(&back) {
                assert_eq!(o.dims(), r.dims(), "{name} chunk {c} dims");
                let stats = ErrorStats::compare(o.data(), r.data());
                // All families run REL 1e-3 against their own range
                // resolution; a conservative absolute ceiling suffices
                // here (bound exactness is covered by the codec suites).
                assert!(
                    stats.max_abs_err <= 0.1,
                    "{name} chunk {c}: max err {}",
                    stats.max_abs_err
                );
            }
        }
    }
}

#[test]
fn repeated_parallel_runs_are_stable() {
    // Same input, same workers, repeated runs: streams never vary with
    // scheduling (per-worker scratch leaves no history).
    let codec = AmricCodec::new(AmricConfig::lr(1e-3), EDGE);
    let chunks = make_chunks(11);
    let first = compress_chunks_parallel(&codec, &chunks, 4).unwrap();
    for _ in 0..5 {
        let again = compress_chunks_parallel(&codec, &chunks, 4).unwrap();
        assert_eq!(first, again);
    }
}

#[test]
fn worker_count_does_not_leak_into_stream_metadata() {
    // The envelope and payload carry no trace of how many workers built
    // them: streams from every worker count decode identically.
    let codec = AmricCodec::new(AmricConfig::interp(1e-3), EDGE);
    let chunks = make_chunks(6);
    let reference = compress_chunks_parallel(&codec, &chunks, 1).unwrap();
    for workers in [2, 4, 7] {
        let streams = compress_chunks_parallel(&codec, &chunks, workers).unwrap();
        for (a, b) in reference.iter().zip(&streams) {
            assert_eq!(a, b);
            let ra = decompress_auto(a).unwrap();
            let rb = decompress_auto(b).unwrap();
            assert_eq!(ra.len(), rb.len());
            for (x, y) in ra.iter().zip(&rb) {
                assert_eq!(x.data(), y.data());
            }
        }
    }
}
