//! The unified-envelope contract: every codec family in the workspace
//! writes the shared 8-byte envelope, `decompress_auto` dispatches any of
//! their streams without out-of-band context, and malformed streams fail
//! with the *specific* [`CodecError`] variant — not just "is_err".

use amr_mesh::IntVect;
use amric::config::{AmricConfig, BaselineConfig};
use amric::prelude::*;
use sz_codec::codec::{read_envelope, ENVELOPE_MAGIC};
use sz_codec::prelude::*;

fn units(n: usize, edge: usize) -> Vec<Buffer3> {
    (0..n)
        .map(|u| {
            let mut b = Buffer3::zeros(Dims3::cube(edge));
            b.fill_with(|i, j, k| {
                (u as f64 * 1.1).sin() * 6.0 + ((i + j) as f64 * 0.3).cos() + k as f64 * 0.04
            });
            b
        })
        .collect()
}

fn origins(n: usize, edge: usize) -> Vec<IntVect> {
    (0..n)
        .map(|u| {
            let (u, e) = (u as i64, edge as i64);
            IntVect::new((u % 2) * e, ((u / 2) % 2) * e, (u / 4) * e)
        })
        .collect()
}

/// One compressor instance per codec id, covering all six families.
fn all_codecs(n: usize, edge: usize) -> Vec<Box<dyn Codec>> {
    vec![
        Box::new(LrCodec::new(LrConfig::new(1e-3))),
        Box::new(InterpCodec::new(InterpConfig::new(1e-3))),
        Box::new(AmricCodec::new(AmricConfig::lr(1e-3), edge)),
        Box::new(TacCodec::new(1e-3, origins(n, edge))),
        Box::new(ZmeshCodec::new(1e-3, origins(n, edge))),
        Box::new(BaselineCodec::new(BaselineConfig::new(1e-3))),
    ]
}

#[test]
fn dispatch_matrix_roundtrips_every_family() {
    // One stream per codec id, decoded twice: through the producing codec
    // and through the registry's auto-dispatch. Both must restore the
    // units exactly alike, and the envelope must name the right family.
    let u = units(6, 8);
    let abs = resolve_abs_eb(&u, 1e-3);
    let mut seen = Vec::new();
    for codec in all_codecs(6, 8) {
        let mut stream = Vec::new();
        let info = codec.compress_into(&u, &mut stream).unwrap();
        assert_eq!(info.codec, codec.id());
        assert_eq!(info.bytes, stream.len());
        assert_eq!(info.units, 6);
        assert_eq!(info.cells, 6 * 512);

        let env = read_envelope(&stream).unwrap();
        assert_eq!(env.codec, codec.id() as u16, "{}", codec.id().name());
        seen.push(env.codec);

        let direct = codec.decompress(&stream).unwrap();
        let auto = decompress_auto(&stream).unwrap();
        assert_eq!(direct.len(), 6);
        assert_eq!(auto.len(), 6);
        for ((o, d), a) in u.iter().zip(&direct).zip(&auto) {
            assert_eq!(o.dims(), d.dims());
            assert_eq!(d.data(), a.data(), "{}: auto ≠ direct", codec.id().name());
            let s = ErrorStats::compare(o.data(), d.data());
            // The baseline resolves REL per 1024-elem chunk whose range
            // can only be ≤ the global range, so `abs` bounds all six.
            assert!(
                s.max_abs_err <= abs * (1.0 + 1e-9),
                "{}: max err {}",
                codec.id().name(),
                s.max_abs_err
            );
        }
    }
    seen.sort_unstable();
    assert_eq!(seen, vec![1, 2, 3, 4, 5, 6], "all six ids exercised");
}

#[test]
fn registry_covers_all_seven_ids() {
    let reg = default_registry();
    let mut ids: Vec<u16> = reg.ids().iter().map(|&i| i as u16).collect();
    ids.sort_unstable();
    assert_eq!(ids, vec![1, 2, 3, 4, 5, 6, 7]);
}

#[test]
fn truncation_is_reported_as_truncated() {
    // Cutting inside the envelope header must surface the Truncated
    // variant (with honest need/have accounting), for every family.
    for codec in all_codecs(4, 8) {
        let stream = codec.compress(&units(4, 8)).unwrap();
        for cut in [0, 1, 5, 7] {
            let err = decompress_auto(&stream[..cut]).unwrap_err();
            assert!(
                matches!(err, CodecError::Truncated { .. }),
                "{} cut at {cut}: {err:?}",
                codec.id().name()
            );
        }
        // An empty input is the degenerate truncation.
        let err = codec.decompress(&[]).unwrap_err();
        assert!(matches!(err, CodecError::Truncated { have: 0, .. }));
    }
}

#[test]
fn wrong_magic_is_reported_as_bad_magic() {
    for codec in all_codecs(4, 8) {
        let mut stream = codec.compress(&units(4, 8)).unwrap();
        stream[0] ^= 0xFF;
        let found = u32::from_le_bytes(stream[..4].try_into().unwrap());
        assert_ne!(found, ENVELOPE_MAGIC);
        let err = decompress_auto(&stream).unwrap_err();
        assert!(
            matches!(err, CodecError::BadMagic { found: f } if f == found),
            "{}: {err:?}",
            codec.id().name()
        );
    }
}

#[test]
fn unknown_codec_id_is_reported_as_unknown_codec() {
    let mut stream = LrCodec::default().compress(&units(3, 8)).unwrap();
    // Patch the envelope's codec id (bytes 4..6) to an unregistered value.
    stream[4..6].copy_from_slice(&999u16.to_le_bytes());
    let err = decompress_auto(&stream).unwrap_err();
    assert!(
        matches!(err, CodecError::UnknownCodec { id: 999 }),
        "{err:?}"
    );
}

#[test]
fn bad_amric_mode_is_reported_as_bad_mode() {
    let cfg = AmricConfig::lr(1e-3);
    let mut stream = compress_field_units(&units(4, 8), &cfg, 8);
    // The pipeline mode byte sits right after the 8-byte envelope.
    stream[8] = 9;
    let err = decompress_field_units(&stream).unwrap_err();
    assert!(matches!(err, CodecError::BadMode { found: 9 }), "{err:?}");
    let err = decompress_auto(&stream).unwrap_err();
    assert!(matches!(err, CodecError::BadMode { found: 9 }), "{err:?}");
}

#[test]
fn wrong_family_decoder_is_reported_as_wrong_codec() {
    // Handing an interp stream to the LR decoder (and vice versa) is a
    // typed family mismatch naming both sides, not a parse explosion and
    // not a bogus "unregistered id" report.
    let lr_stream = LrCodec::default().compress(&units(3, 8)).unwrap();
    let err = InterpCodec::default().decompress(&lr_stream).unwrap_err();
    assert!(
        matches!(
            err,
            CodecError::WrongCodec {
                expected: 2,
                found: 1
            }
        ),
        "{err:?}"
    );
    let interp_stream = InterpCodec::default().compress(&units(3, 8)).unwrap();
    let err = LrCodec::default().decompress(&interp_stream).unwrap_err();
    assert!(
        matches!(
            err,
            CodecError::WrongCodec {
                expected: 1,
                found: 2
            }
        ),
        "{err:?}"
    );
}

#[test]
fn hierarchy_zmesh_stream_dispatches_too() {
    // The hierarchy-level zMesh writer shares the envelope: its streams
    // decode through the registry into the locality-ordered 1-D buffer.
    use amr_apps::prelude::*;
    let cfg = AmrRunConfig {
        coarse_dims: (16, 16, 16),
        max_grid_size: 8,
        blocking_factor: 8,
        nranks: 2,
        num_levels: 2,
        fine_fraction: 0.05,
        grid_eff: 0.7,
    };
    let h = build_hierarchy(&NyxScenario::new(5), &cfg, 0.0);
    let bytes = amric::zmesh::zmesh_compress(&h, 0, 1e-3);
    let decoded = decompress_auto(&bytes).unwrap();
    let reference = amric::zmesh::zmesh_reference(&h, 0);
    assert_eq!(decoded.len(), 1);
    assert_eq!(decoded[0].dims().len(), reference.len());
}
