//! Regrid-schedule property suite for the temporal session: whatever the
//! hierarchy does between snapshots — stays put, regrids heavily, grows a
//! level, collapses one — every snapshot must round-trip within the error
//! bound, and reference linkage must appear exactly where delta coding
//! actually happened.

use amr_apps::prelude::*;
use amr_mesh::prelude::*;
use amric::prelude::*;
use amric::temporal::{TemporalReadState, TemporalSession, TemporalSessionConfig};
use h5lite::{H5Reader, H5Writer};
use std::sync::Arc;

const REL_EB: f64 = 1e-3;

fn write_snapshot(session: &mut TemporalSession, h: &AmrHierarchy) -> H5Reader {
    let (w, mem) = H5Writer::in_memory();
    session.write_to(Arc::new(w), h).unwrap();
    H5Reader::from_storage(Box::new(mem)).unwrap()
}

/// Decode the whole chain in order, checking the bound at every step.
fn verify_chain(series: &[(AmrHierarchy, H5Reader)], rel_eb: f64) {
    let mut state: Option<TemporalReadState> = None;
    for (step, (h, reader)) in series.iter().enumerate() {
        let (pf, next) = read_temporal_hierarchy(reader, state.as_ref()).unwrap();
        for c in verify_against(&pf, h, rel_eb) {
            assert!(
                c.bound_ok,
                "step {step} field {} violates the bound (max err {})",
                c.field, c.stats.max_abs_err
            );
        }
        state = Some(next);
    }
}

#[test]
fn stable_schedule_roundtrips_with_linkage() {
    let cfg = AmrRunConfig {
        coarse_dims: (16, 16, 16),
        max_grid_size: 8,
        blocking_factor: 8,
        nranks: 2,
        num_levels: 2,
        fine_fraction: 0.05,
        grid_eff: 0.7,
    };
    let mut session = TemporalSession::new(TemporalSessionConfig::new(REL_EB), 8);
    let series: Vec<_> = TimeSeries::new(&NyxScenario::new(11), cfg, 0.02, 4)
        .map(|(_, _, h)| {
            let r = write_snapshot(&mut session, &h);
            (h, r)
        })
        .collect();
    // A slow dt keeps the hierarchy stable: every snapshot after the
    // first must actually link back.
    for (step, (_, r)) in series.iter().enumerate() {
        let meta = read_temporal_meta(r).unwrap();
        assert_eq!(meta.snapshot_id, step as u64 + 1);
        assert_eq!(meta.reference_id, (step > 0).then_some(step as u64));
    }
    verify_chain(&series, REL_EB);
}

#[test]
fn heavy_regrid_schedule_stays_within_bound() {
    // dt large enough that the fine level relocates substantially each
    // step — most units lose their reference and fall back spatially.
    let cfg = AmrRunConfig {
        coarse_dims: (8, 8, 64),
        max_grid_size: 16,
        blocking_factor: 4,
        nranks: 2,
        num_levels: 2,
        fine_fraction: 0.03,
        grid_eff: 0.7,
    };
    let mut session = TemporalSession::new(TemporalSessionConfig::new(REL_EB), 4);
    let series: Vec<_> = TimeSeries::new(&WarpXScenario::new(4), cfg, 0.4, 4)
        .map(|(_, _, h)| {
            let r = write_snapshot(&mut session, &h);
            (h, r)
        })
        .collect();
    let max_change = series
        .windows(2)
        .map(|w| regrid_change(&w[0].0, &w[1].0))
        .fold(0.0f64, f64::max);
    assert!(
        max_change > 0.2,
        "schedule too tame to exercise regridding (max change {max_change})"
    );
    verify_chain(&series, REL_EB);
}

#[test]
fn growing_hierarchy_codes_new_level_spatially() {
    // Snapshot 1 has one level, snapshot 2 refines a second into
    // existence: the new level has no reference plan and must be coded
    // spatially (its chunks record no reference), while the persistent
    // coarse level may still delta-code.
    let scenario = NyxScenario::new(11);
    let base = AmrRunConfig {
        coarse_dims: (16, 16, 16),
        max_grid_size: 8,
        blocking_factor: 8,
        nranks: 2,
        num_levels: 1,
        fine_fraction: 0.05,
        grid_eff: 0.7,
    };
    let grown = AmrRunConfig {
        num_levels: 2,
        ..base
    };
    let h1 = build_hierarchy(&scenario, &base, 0.0);
    let h2 = build_hierarchy(&scenario, &grown, 0.02);
    let mut session = TemporalSession::new(TemporalSessionConfig::new(REL_EB), 8);
    let r1 = write_snapshot(&mut session, &h1);
    let r2 = write_snapshot(&mut session, &h2);
    let fine_idx = r2.chunk_index("level_1/field_0").unwrap().unwrap();
    assert!(
        fine_idx.entries.iter().all(|e| e.reference.is_none()),
        "a level that did not exist last snapshot cannot reference it"
    );
    verify_chain(&[(h1, r1), (h2, r2)], REL_EB);
}

#[test]
fn collapsing_hierarchy_roundtrips() {
    // Snapshot 2 drops the fine level entirely; retained state for the
    // vanished level must simply be ignored, and the survivors still
    // delta-code where their regions held still.
    let scenario = NyxScenario::new(11);
    let deep = AmrRunConfig {
        coarse_dims: (16, 16, 16),
        max_grid_size: 8,
        blocking_factor: 8,
        nranks: 2,
        num_levels: 2,
        fine_fraction: 0.05,
        grid_eff: 0.7,
    };
    let shallow = AmrRunConfig {
        num_levels: 1,
        ..deep
    };
    let h1 = build_hierarchy(&scenario, &deep, 0.0);
    let h2 = build_hierarchy(&scenario, &shallow, 0.01);
    let mut session = TemporalSession::new(TemporalSessionConfig::new(REL_EB), 8);
    let r1 = write_snapshot(&mut session, &h1);
    let r2 = write_snapshot(&mut session, &h2);
    verify_chain(&[(h1, r1), (h2, r2)], REL_EB);
}

#[test]
fn skipping_a_snapshot_in_the_chain_is_rejected() {
    // Decoding snapshot 3 against snapshot 1's state (operator dropped a
    // file) must fail typed, not reconstruct from the wrong base.
    let cfg = AmrRunConfig {
        coarse_dims: (16, 16, 16),
        max_grid_size: 8,
        blocking_factor: 8,
        nranks: 2,
        num_levels: 2,
        fine_fraction: 0.05,
        grid_eff: 0.7,
    };
    let mut session = TemporalSession::new(TemporalSessionConfig::new(REL_EB), 8);
    let series: Vec<_> = TimeSeries::new(&NyxScenario::new(11), cfg, 0.02, 3)
        .map(|(_, _, h)| write_snapshot(&mut session, &h))
        .collect();
    let (_, s1) = read_temporal_hierarchy(&series[0], None).unwrap();
    assert!(read_temporal_hierarchy(&series[2], Some(&s1)).is_err());
}
