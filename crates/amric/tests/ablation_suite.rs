//! Ablation tests over AMRIC's §3 design choices: each switch on
//! `AmricConfig` must move the metrics in the direction the paper claims,
//! on data where the mechanism applies.

use amr_apps::prelude::*;
use amr_mesh::IntVect;
use amric::config::{AmricConfig, MergePolicy};
use amric::pipeline::{compress_field_units, decompress_field_units};
use amric::tac::{tac_compress, tac_decompress};
use amric::zmesh;
use sz_codec::prelude::*;

/// Unit blocks with strong per-unit offsets (discontiguous sampling).
fn discontiguous_units(n: usize, edge: usize) -> Vec<Buffer3> {
    (0..n)
        .map(|u| {
            let mut b = Buffer3::zeros(Dims3::cube(edge));
            let base = (u as f64 * 2.13).sin() * 50.0;
            b.fill_with(|i, j, k| base + ((i * 2 + j * 3 + k * 5) as f64 * 0.07).sin());
            b
        })
        .collect()
}

#[test]
fn adaptive_block_size_helps_unit8() {
    // Eq. 1's domain: 8³ units. Adaptive (4³) must match or beat fixed 6³.
    let units = discontiguous_units(48, 8);
    let on = AmricConfig::lr(1e-3).with_adaptive_block_size(true);
    let off = on.with_adaptive_block_size(false);
    let n_on = compress_field_units(&units, &on, 8).len();
    let n_off = compress_field_units(&units, &off, 8).len();
    assert!(
        (n_on as f64) < n_off as f64 * 1.02,
        "adaptive {n_on} vs fixed {n_off}"
    );
}

#[test]
fn adaptive_is_noop_for_unit16() {
    // 16 mod 6 = 4 → Eq. 1 keeps 6³; outputs must be identical.
    let units = discontiguous_units(8, 16);
    let on = AmricConfig::lr(1e-3).with_adaptive_block_size(true);
    let off = on.with_adaptive_block_size(false);
    assert_eq!(
        compress_field_units(&units, &on, 16),
        compress_field_units(&units, &off, 16)
    );
}

#[test]
fn sle_not_worse_than_lm_on_discontiguous_data() {
    let units = discontiguous_units(64, 8);
    let sle = AmricConfig::lr(1e-4);
    let lm = sle.with_merge(MergePolicy::LinearMerge);
    let n_sle = compress_field_units(&units, &sle, 8).len();
    let n_lm = compress_field_units(&units, &lm, 8).len();
    assert!(
        (n_sle as f64) < n_lm as f64 * 1.05,
        "SLE {n_sle} vs LM {n_lm}"
    );
}

#[test]
fn every_config_combination_roundtrips() {
    let units = discontiguous_units(10, 8);
    for algorithm in [SzAlgorithm::LorenzoRegression, SzAlgorithm::Interpolation] {
        for merge in [MergePolicy::SharedEncoding, MergePolicy::LinearMerge] {
            for adaptive in [false, true] {
                for cluster in [false, true] {
                    let cfg = AmricConfig::lr(1e-3)
                        .with_algorithm(algorithm)
                        .with_merge(merge)
                        .with_adaptive_block_size(adaptive)
                        .with_cluster_arrangement(cluster);
                    let stream = compress_field_units(&units, &cfg, 8);
                    let back = decompress_field_units(&stream)
                        .unwrap_or_else(|e| panic!("decode failed for {cfg:?}: {e}"));
                    assert_eq!(back.len(), units.len(), "{cfg:?}");
                    let abs = amric::pipeline::resolve_abs_eb(&units, 1e-3);
                    for (o, r) in units.iter().zip(&back) {
                        let s = ErrorStats::compare(o.data(), r.data());
                        assert!(s.max_abs_err <= abs * (1.0 + 1e-9), "{cfg:?}");
                    }
                }
            }
        }
    }
}

#[test]
fn tac_stream_smaller_than_per_unit_but_larger_than_amric() {
    // The Fig.16 ordering: per-unit black box > TAC > AMRIC.
    let units = discontiguous_units(64, 8);
    let origins: Vec<IntVect> = (0..64)
        .map(|u| IntVect::new((u % 4) * 8, ((u / 4) % 4) * 8, (u / 16) * 8))
        .collect();
    let abs = amric::pipeline::resolve_abs_eb(&units, 1e-3);
    let per_unit: usize = units
        .iter()
        .map(|u| lr::compress(u, &LrConfig::new(abs)).len())
        .sum();
    let tac = tac_compress(&units, &origins, 1e-3).len();
    let amric_len = compress_field_units(&units, &AmricConfig::lr(1e-3), 8).len();
    assert!(tac < per_unit, "TAC {tac} vs per-unit {per_unit}");
    assert!(amric_len < tac, "AMRIC {amric_len} vs TAC {tac}");
    // And TAC roundtrips.
    let back = tac_decompress(&tac_compress(&units, &origins, 1e-3)).unwrap();
    assert_eq!(back.len(), units.len());
}

#[test]
fn zmesh_bound_holds_across_fields() {
    let cfg = AmrRunConfig {
        coarse_dims: (16, 16, 16),
        max_grid_size: 8,
        blocking_factor: 8,
        nranks: 2,
        num_levels: 2,
        fine_fraction: 0.05,
        grid_eff: 0.7,
    };
    let h = build_hierarchy(&NyxScenario::new(77), &cfg, 0.0);
    for field in 0..3 {
        let stream = zmesh::zmesh_compress(&h, field, 1e-3);
        let back = zmesh::zmesh_decompress(&h, field, &stream).unwrap();
        let reference = zmesh::zmesh_reference(&h, field);
        let stats = ErrorStats::compare(&reference, &back);
        assert!(
            stats.max_abs_err <= 1e-3 * stats.value_range * (1.0 + 1e-9),
            "field {field}"
        );
    }
}

#[test]
fn reorganize_inverses_are_exact() {
    use amric::reorganize::*;
    let units = discontiguous_units(13, 4);
    let (merged, ext) = linear_merge(&units);
    assert_eq!(linear_split(&merged, &ext), units);
    let (packed, grid) = cluster_pack(&units);
    assert_eq!(cluster_unpack(&packed, grid, Dims3::cube(4), 13), units);
}
