//! Fuzz-lite robustness suite for the self-describing wire formats.
//!
//! Every decoder must be total over `&[u8]`: corrupted or truncated
//! AMRIC, TAC, and zMesh streams (and the underlying SZ_L/R / SZ_Interp
//! containers) return `Err` — they never panic, never assert, and never
//! let a flipped length field drive an absurd allocation. The tests
//! derive corrupt inputs from valid streams by truncation and byte
//! flips; a panic anywhere fails the test by unwinding.

use amr_apps::prelude::*;
use amr_mesh::IntVect;
use amric::config::AmricConfig;
use amric::pipeline::{compress_field_units, decompress_field_units};
use amric::tac::{tac_compress, tac_decompress};
use amric::zmesh::{zmesh_compress, zmesh_decompress};
use amric::MergePolicy;
use sz_codec::prelude::*;
use sz_codec::CodecError;

/// Unit blocks with mild structure (so all pipeline modes exercise their
/// real paths: selection bitmaps, outliers, huffman tables, LZ matches).
fn units(n: usize, edge: usize) -> Vec<Buffer3> {
    (0..n)
        .map(|u| {
            let mut b = Buffer3::zeros(Dims3::cube(edge));
            b.fill_with(|i, j, k| {
                (u as f64 * 1.3).sin() * 20.0
                    + ((i as f64 * 0.5).sin() + (j as f64 * 0.4).cos()) * (1.0 + k as f64 * 0.05)
            });
            b
        })
        .collect()
}

fn origins(n: usize, edge: usize) -> Vec<IntVect> {
    (0..n)
        .map(|u| {
            let u = u as i64;
            let e = edge as i64;
            IntVect::new((u % 3) * e, ((u / 3) % 3) * e, (u / 9) * e)
        })
        .collect()
}

/// Truncation lengths to probe: every short prefix, then an even spread.
fn truncation_points(len: usize) -> Vec<usize> {
    let mut pts: Vec<usize> = (0..len.min(48)).collect();
    let step = (len / 64).max(1);
    pts.extend((48..len).step_by(step));
    pts.push(len.saturating_sub(1));
    pts.retain(|&p| p < len);
    pts.sort_unstable();
    pts.dedup();
    pts
}

/// Byte positions to flip: dense over the header, sampled over the body.
fn flip_points(len: usize) -> Vec<usize> {
    let mut pts: Vec<usize> = (0..len.min(64)).collect();
    let step = (len / 96).max(1);
    pts.extend((64..len).step_by(step));
    pts.retain(|&p| p < len);
    pts.sort_unstable();
    pts.dedup();
    pts
}

/// Drive one decoder over truncations (must `Err`) and byte flips (must
/// not panic; `Ok` with different payload is acceptable).
fn assault<T>(name: &str, valid: &[u8], decode: impl Fn(&[u8]) -> Result<T, CodecError>) {
    assert!(decode(valid).is_ok(), "{name}: pristine stream must decode");
    for cut in truncation_points(valid.len()) {
        assert!(
            decode(&valid[..cut]).is_err(),
            "{name}: truncation to {cut}/{} bytes must be rejected",
            valid.len()
        );
    }
    for pos in flip_points(valid.len()) {
        for mask in [0x01u8, 0x80, 0xFF] {
            let mut corrupt = valid.to_vec();
            corrupt[pos] ^= mask;
            // Must return (Ok or Err) rather than panic/abort.
            let _ = decode(&corrupt);
        }
    }
}

#[test]
fn amric_stream_lr_sle_total() {
    let u = units(24, 8);
    let bytes = compress_field_units(&u, &AmricConfig::lr(1e-3), 8);
    assault("amric/lr-sle", &bytes, decompress_field_units);
}

#[test]
fn amric_stream_lr_linear_merge_total() {
    let u = units(24, 8);
    let cfg = AmricConfig::lr(1e-3).with_merge(MergePolicy::LinearMerge);
    let bytes = compress_field_units(&u, &cfg, 8);
    assault("amric/lr-lm", &bytes, decompress_field_units);
}

#[test]
fn amric_stream_interp_cluster_total() {
    let u = units(27, 8);
    let bytes = compress_field_units(&u, &AmricConfig::interp(1e-3), 8);
    assault("amric/interp-cluster", &bytes, decompress_field_units);
}

#[test]
fn amric_stream_interp_linear_total() {
    let u = units(27, 8);
    let cfg = AmricConfig::interp(1e-3).with_cluster_arrangement(false);
    let bytes = compress_field_units(&u, &cfg, 8);
    assault("amric/interp-linear", &bytes, decompress_field_units);
}

#[test]
fn tac_stream_total() {
    let u = units(20, 8);
    let o = origins(20, 8);
    let bytes = tac_compress(&u, &o, 1e-3);
    assault("tac", &bytes, tac_decompress);
}

#[test]
fn zmesh_stream_total() {
    let cfg = AmrRunConfig {
        coarse_dims: (16, 16, 16),
        max_grid_size: 8,
        blocking_factor: 8,
        nranks: 2,
        num_levels: 2,
        fine_fraction: 0.05,
        grid_eff: 0.7,
    };
    let h = build_hierarchy(&NyxScenario::new(3), &cfg, 0.0);
    let bytes = zmesh_compress(&h, 0, 1e-3);
    assault("zmesh", &bytes, |b| zmesh_decompress(&h, 0, b));
}

#[test]
fn sz_lr_stream_total() {
    let mut b = Buffer3::zeros(Dims3::cube(12));
    b.fill_with(|i, j, k| (i as f64 * 0.3).sin() + (j + 2 * k) as f64 * 0.02);
    let bytes = lr::compress(&b, &LrConfig::new(1e-3));
    assault("sz/lr", &bytes, lr::decompress);
}

#[test]
fn sz_interp_stream_total() {
    let mut b = Buffer3::zeros(Dims3::cube(12));
    b.fill_with(|i, j, k| (k as f64 * 0.2).cos() * 3.0 + (i + j) as f64 * 0.01);
    let bytes = interp::compress(&b, &InterpConfig::new(1e-3));
    assault("sz/interp", &bytes, interp::decompress);
}

#[test]
fn garbage_and_empty_inputs_rejected() {
    let garbage: Vec<u8> = (0..4096u32)
        .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
        .collect();
    assert!(decompress_field_units(&[]).is_err());
    assert!(decompress_field_units(&garbage).is_err());
    assert!(tac_decompress(&[]).is_err());
    assert!(tac_decompress(&garbage).is_err());
    assert!(lr::decompress(&[]).is_err());
    assert!(lr::decompress(&garbage).is_err());
    assert!(interp::decompress(&[]).is_err());
    assert!(interp::decompress(&garbage).is_err());
    assert!(sz_codec::lossless::decompress(&garbage).is_err());
}
