//! Pipeline-level decode hardening: the AMRIC container embeds a raw
//! SZ_L/R or SZ_Interp sub-stream, so a forged Huffman table deep inside
//! a pipeline stream must still surface as a typed
//! [`CodecError::Corrupt`] from `decompress_field_units` — the hardening
//! of the family decoders has to hold through the outer container too.

use amric::config::AmricConfig;
use amric::pipeline::{compress_field_units, decompress_field_units};
use sz_codec::buffer3::{Buffer3, Dims3};
use sz_codec::codec::{read_envelope, CodecId};
use sz_codec::error::CodecError;
use sz_codec::lossless;
use sz_codec::quantizer::QUANT_RADIUS;
use sz_codec::wire::Reader;

fn units(n: usize, edge: usize) -> Vec<Buffer3> {
    (0..n)
        .map(|u| {
            let mut b = Buffer3::zeros(Dims3::cube(edge));
            b.fill_with(|i, j, k| {
                (i as f64 * 0.3 + u as f64).sin() + 0.02 * j as f64 - 0.01 * k as f64
            });
            b
        })
        .collect()
}

/// Byte offset where the embedded SZ sub-stream starts: the first
/// interior position that parses as an envelope for an SZ family.
fn inner_stream_offset(bytes: &[u8]) -> usize {
    for pos in 1..bytes.len().saturating_sub(8) {
        if let Ok(env) = read_envelope(&bytes[pos..]) {
            if env.codec == CodecId::LrSle as u16 || env.codec == CodecId::Interp as u16 {
                return pos;
            }
        }
    }
    panic!("no embedded SZ stream found");
}

/// Forge the first data-table symbol of the embedded sub-stream (same
/// surgery as sz-codec's decode_hardening tests, one container deeper).
fn forge_inner_lr_table(bytes: &[u8], new_sym: u32) -> Vec<u8> {
    let split = inner_stream_offset(bytes);
    let inner = &bytes[split..];
    let env = read_envelope(inner).unwrap();
    assert_eq!(
        env.codec,
        CodecId::LrSle as u16,
        "expected an SZ_L/R sub-stream"
    );
    let mut payload = lossless::decompress(&inner[env.payload_offset..]).unwrap();

    // Walk the SZ_L/R container to the data Huffman block.
    let off = {
        let mut r = Reader::new(&payload);
        r.get_f64().unwrap(); // error bound
        r.get_u8().unwrap(); // block size
        let ndom = r.get_u32().unwrap() as usize;
        for _ in 0..3 * ndom {
            r.get_u32().unwrap();
        }
        let nsel = r.get_u64().unwrap() as usize;
        r.get_raw(nsel.div_ceil(8)).unwrap();
        r.get_block().unwrap(); // coefficient block
        let ncoef = r.get_u64().unwrap() as usize;
        r.get_raw(ncoef * 8).unwrap();
        payload.len() - r.remaining()
    };
    // Block layout: [u64 len][u32 n_lens][(u32 sym, u8 len) × n]…
    payload[off + 12..off + 16].copy_from_slice(&new_sym.to_le_bytes());

    let mut out = bytes[..split + env.payload_offset].to_vec();
    lossless::compress_into(&payload, &mut out);
    out
}

#[test]
fn pipeline_with_forged_inner_table_is_typed_corrupt() {
    let us = units(4, 8);
    let bytes = compress_field_units(&us, &AmricConfig::lr(1e-3), 8);
    assert!(decompress_field_units(&bytes).is_ok(), "baseline decodes");

    for forged_sym in [0u32, 2 * QUANT_RADIUS as u32 + 4404] {
        let bad = forge_inner_lr_table(&bytes, forged_sym);
        match decompress_field_units(&bad) {
            Err(CodecError::Corrupt { .. }) => {}
            Err(other) => panic!("expected Corrupt, got {other:?}"),
            Ok(_) => panic!("forged pipeline stream decoded successfully"),
        }
    }
}
