//! Concurrency stress suite for the overlapped write path: a failing
//! chunk injected mid-batch (the non-unit-multiple regression from the
//! PR 2 filter hardening) must drain the pool cleanly, abort the
//! collective without deadlocking peer ranks, and surface the typed
//! `CodecError` on every rank.
//!
//! The suite is written to pass under both `--test-threads=1` and the
//! default parallel test runner (CI runs both): nothing here depends on
//! the harness's own threading, and every scenario is wrapped in a
//! watchdog so a deadlock fails loudly instead of hanging the run.

use amric::prelude::*;
use amric::writer::AmricFieldFilter;
use h5lite::prelude::*;
use rankpar::run_ranks;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;
use sz_codec::CodecError;

/// Run `f` on its own thread and panic if it has not finished within the
/// deadline — turns a cross-rank deadlock into a visible test failure.
fn with_watchdog<T: Send + 'static>(name: &str, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let tag = name.to_string();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(Duration::from_secs(120)) {
        Ok(v) => v,
        Err(_) => panic!("{tag}: deadlocked (watchdog expired)"),
    }
}

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("amric-stress-{}-{name}.h5l", std::process::id()));
    p
}

fn filter(unit_edge: usize) -> AmricFieldFilter {
    AmricFieldFilter::fixed(AmricConfig::lr(1e-3), unit_edge, 1e-3)
}

fn good_chunk(seed: usize) -> ChunkData {
    // 2 units of 4³ = 128 elems.
    ChunkData::full(
        (0..128)
            .map(|i| ((seed * 128 + i) as f64 * 0.017).sin())
            .collect(),
    )
}

/// Field jobs where `poison_field` on `poison_rank` gets a chunk whose
/// length is not a multiple of the 4³ unit volume.
fn jobs_with_poison(
    rank: usize,
    nfields: usize,
    poison_rank: usize,
    poison_field: Option<usize>,
) -> Vec<FieldWriteJob> {
    (0..nfields)
        .map(|f| {
            let chunk = if Some(f) == poison_field && rank == poison_rank {
                ChunkData::full(vec![0.25; 63]) // 4³ = 64 ∤ 63 → typed error
            } else {
                good_chunk(rank * nfields + f)
            };
            FieldWriteJob {
                name: format!("level_0/field_{f}"),
                chunks: vec![chunk],
                chunk_elems: 128,
                filter: filter(4),
                mode: FilterMode::SizeAware,
            }
        })
        .collect()
}

#[test]
fn failing_chunk_mid_batch_surfaces_typed_error_on_every_rank() {
    for workers in [2usize, 4] {
        let path = tmp(&format!("midbatch-{workers}"));
        let writer = Arc::new(H5Writer::create(&path).unwrap());
        let w = Arc::clone(&writer);
        let results = with_watchdog("mid-batch abort", move || {
            run_ranks(2, move |comm| {
                // Rank 1's field 3 (of 6) is poisoned: fields 0–2 write
                // collectively, the rest abort in lockstep.
                let jobs = jobs_with_poison(comm.rank(), 6, 1, Some(3));
                write_field_parallel(&comm, &w, &jobs, workers)
            })
        });
        assert!(results[0].is_err(), "peer rank must see the abort");
        let peer_err = results[0].as_ref().unwrap_err();
        assert!(
            peer_err.as_codec().is_none(),
            "peer gets the abort notice, not the codec error: {peer_err:?}"
        );
        let own_err = results[1].as_ref().unwrap_err();
        assert!(
            matches!(own_err.as_codec(), Some(CodecError::DimsMismatch { .. })),
            "failing rank surfaces the typed CodecError: {own_err:?}"
        );
        // The fields before the poison completed collectively and are
        // readable; the file itself stays consistent.
        writer.finish().unwrap();
        let rd = H5Reader::open(&path).unwrap();
        for f in 0..3 {
            let name = format!("level_0/field_{f}");
            assert!(
                rd.dataset_names().contains(&name.as_str()),
                "pre-failure field {f} must be registered"
            );
            let meta = rd.meta(&name).unwrap();
            assert_eq!(meta.chunks.len(), 2);
        }
        for f in 3..6 {
            let name = format!("level_0/field_{f}");
            assert!(
                !rd.dataset_names().contains(&name.as_str()),
                "post-failure field {f} must not be registered"
            );
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn both_ranks_failing_still_drain() {
    let path = tmp("both-fail");
    let writer = Arc::new(H5Writer::create(&path).unwrap());
    let w = Arc::clone(&writer);
    let results = with_watchdog("both ranks failing", move || {
        run_ranks(2, move |comm| {
            // Different poison fields per rank: the collectives must stay
            // in lockstep even when the ranks fail at different points.
            let poison = if comm.rank() == 0 { 1 } else { 4 };
            let jobs = jobs_with_poison(comm.rank(), 6, comm.rank(), Some(poison));
            write_field_parallel(&comm, &w, &jobs, 4)
        })
    });
    for (rank, r) in results.iter().enumerate() {
        assert!(r.is_err(), "rank {rank} must fail");
    }
    // Rank 0 fails at its own field 1 with the typed error.
    assert!(matches!(
        results[0].as_ref().unwrap_err().as_codec(),
        Some(CodecError::DimsMismatch { .. })
    ));
    std::fs::remove_file(&path).ok();
}

#[test]
fn repeated_overlapped_writes_under_contention() {
    // Hammer the full writer with more pool threads than cores, repeated
    // back-to-back, verifying the produced file every round — scheduling
    // churn must never change bytes or wedge the pipeline.
    let h = {
        use amr_apps::prelude::*;
        let s = NyxScenario::new(23);
        let cfg = AmrRunConfig {
            coarse_dims: (16, 16, 16),
            max_grid_size: 8,
            blocking_factor: 8,
            nranks: 2,
            num_levels: 2,
            fine_fraction: 0.05,
            grid_eff: 0.7,
        };
        build_hierarchy(&s, &cfg, 0.0)
    };
    // Stored AMRIC stream bytes per chunk (the filter is app-defined, so
    // raw chunk comparison is the strongest check anyway).
    let chunk_bytes = |path: &std::path::Path| -> Vec<Vec<u8>> {
        let rd = H5Reader::open(path).unwrap();
        let n = rd.meta("level_0/field_0").unwrap().chunks.len();
        (0..n)
            .map(|i| rd.read_chunk_raw("level_0/field_0", i).unwrap())
            .collect()
    };
    let reference = {
        let path = tmp("contention-ref");
        write_amric(&path, &h, &AmricConfig::lr(1e-3), 8).unwrap();
        let bytes = chunk_bytes(&path);
        std::fs::remove_file(&path).ok();
        bytes
    };
    for round in 0..3 {
        let path = tmp(&format!("contention-{round}"));
        let h2 = h.clone();
        let p2 = path.clone();
        let report = with_watchdog("contended write", move || {
            write_amric(&p2, &h2, &AmricConfig::lr(1e-3).with_workers(7), 8).unwrap()
        });
        assert_eq!(report.nranks, 2);
        assert_eq!(
            chunk_bytes(&path),
            reference,
            "round {round}: overlapped write stored different bytes"
        );
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn pipelined_collective_failing_chunk_mid_batch() {
    // The chunk-level pipelined collective (many chunks per rank): a
    // non-unit-multiple chunk mid-batch aborts both ranks cleanly.
    let path = tmp("pipelined-abort");
    let writer = Arc::new(H5Writer::create(&path).unwrap());
    let w = Arc::clone(&writer);
    let results = with_watchdog("pipelined abort", move || {
        run_ranks(2, move |comm| {
            let mut chunks: Vec<ChunkData> = (0..12).map(good_chunk).collect();
            if comm.rank() == 0 {
                chunks[7] = ChunkData::full(vec![1.0; 63]); // mid-batch poison
            }
            collective_write_pipelined(
                &comm,
                &w,
                "d",
                &chunks,
                128,
                &filter(4),
                FilterMode::SizeAware,
                4,
            )
        })
    });
    assert!(matches!(
        results[0].as_ref().unwrap_err().as_codec(),
        Some(CodecError::DimsMismatch { .. })
    ));
    assert!(results[1].is_err());
    std::fs::remove_file(&path).ok();
}
