//! Golden-stream corpus: small fixed inputs compressed through every
//! codec family, with the expected stream bytes committed under
//! `tests/golden/`. Kernel rewrites (vectorization, cache blocking,
//! fused passes) must keep every stream byte-identical to the scalar
//! baseline these files were generated from — any diff here is a format
//! or bitstream break, not a perf regression.
//!
//! Regenerate after an *intentional* format change with
//! `AMRIC_GOLDEN_BLESS=1 cargo test -p amric --test golden_streams`.

use amr_mesh::geom::IntVect;
use amric::codec::{AmricCodec, BaselineCodec, TacCodec, ZmeshCodec};
use amric::prelude::*;
use std::path::PathBuf;
use sz_codec::codec::Codec;
use sz_codec::interp::InterpCodec;
use sz_codec::lr::LrCodec;
use sz_codec::prelude::*;

/// Deterministic LCG in [-0.5, 0.5).
fn lcg(state: &mut u64) -> f64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    (*state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
}

/// Fixed unit set: `n` blocks of `dims`, a smooth trend plus seeded noise
/// (exercises both predictors, some outliers, all symbol ranges).
fn units(n: usize, dims: Dims3, seed: u64) -> Vec<Buffer3> {
    let mut state = seed;
    (0..n)
        .map(|u| {
            let mut b = Buffer3::zeros(dims);
            b.fill_with(|i, j, k| {
                let base = ((i as f64 * 0.37 + u as f64).sin() + (j as f64 * 0.21).cos())
                    * (1.0 + k as f64 * 0.05);
                base + lcg(&mut state) * 0.02 + if (i + j + k + u) % 97 == 0 { 3.0 } else { 0.0 }
            });
            b
        })
        .collect()
}

fn origins(n: usize) -> Vec<IntVect> {
    // Scattered (non-contiguous) origins so TAC's Morton grouping and
    // zMesh's locality ordering both do real work.
    (0..n)
        .map(|u| {
            let u = u as i64;
            IntVect::new((u * 8) % 24, ((u / 3) * 8) % 16, (u * 16) % 32)
        })
        .collect()
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// Compare `bytes` against the committed golden file (or rewrite it when
/// blessing), then prove the stream still round-trips through
/// `decompress_auto` within the error bound.
fn check(name: &str, bytes: &[u8], orig: &[Buffer3], abs_eb: f64) {
    let path = golden_dir().join(format!("{name}.bin"));
    if std::env::var("AMRIC_GOLDEN_BLESS").is_ok() {
        std::fs::create_dir_all(golden_dir()).expect("mkdir golden");
        std::fs::write(&path, bytes).expect("write golden");
    }
    let expected = std::fs::read(&path)
        .unwrap_or_else(|e| panic!("missing golden file {} ({e}); bless first", path.display()));
    assert_eq!(
        expected.len(),
        bytes.len(),
        "{name}: stream length changed ({} -> {})",
        expected.len(),
        bytes.len()
    );
    if expected != bytes {
        let first_diff = expected
            .iter()
            .zip(bytes)
            .position(|(a, b)| a != b)
            .unwrap_or(0);
        panic!("{name}: stream bytes diverge from golden at offset {first_diff}");
    }
    // Sanity: the pinned stream is decodable and within bound.
    let back = decompress_auto(bytes).expect("golden stream decodes");
    assert_eq!(back.len(), orig.len(), "{name}: unit count");
    for (o, b) in orig.iter().zip(&back) {
        assert_eq!(o.dims(), b.dims(), "{name}: dims");
        let s = ErrorStats::compare(o.data(), b.data());
        assert!(
            s.max_abs_err <= abs_eb * (1.0 + 1e-9),
            "{name}: max err {} > {abs_eb}",
            s.max_abs_err
        );
    }
}

fn compress_with(codec: &dyn Codec, units: &[Buffer3]) -> Vec<u8> {
    let mut out = Vec::new();
    codec.compress_into(units, &mut out).expect("compress");
    out
}

#[test]
fn golden_lr_sle() {
    let u = units(6, Dims3::cube(10), 0xA001);
    let abs = resolve_abs_eb(&u, 1e-3);
    let codec = LrCodec::new(LrConfig::new(abs));
    check("lr_sle", &compress_with(&codec, &u), &u, abs);
}

#[test]
fn golden_lr_ragged() {
    // Mixed shapes: domain-edge blocks exercise the boundary paths of the
    // Lorenzo and regression kernels.
    let mut u = units(3, Dims3::cube(8), 0xA002);
    u.extend(units(1, Dims3::new(8, 8, 3), 0xA003));
    u.extend(units(1, Dims3::new(5, 7, 8), 0xA004));
    let abs = resolve_abs_eb(&u, 1e-3);
    let codec = LrCodec::new(LrConfig::new(abs));
    check("lr_ragged", &compress_with(&codec, &u), &u, abs);
}

#[test]
fn golden_interp() {
    let u = units(1, Dims3::new(17, 12, 9), 0xB001);
    let abs = resolve_abs_eb(&u, 1e-3);
    let codec = InterpCodec::new(InterpConfig::new(abs));
    check("interp", &compress_with(&codec, &u), &u, abs);
}

#[test]
fn golden_interp_multi() {
    let u = units(3, Dims3::cube(9), 0xB002);
    let abs = resolve_abs_eb(&u, 1e-3);
    let codec = InterpCodec::new(InterpConfig::new(abs));
    check("interp_multi", &compress_with(&codec, &u), &u, abs);
}

#[test]
fn golden_pipeline_modes() {
    // All four AMRIC pipeline stream modes.
    let u = units(8, Dims3::cube(8), 0xC001);
    let abs = resolve_abs_eb(&u, 1e-3);
    let cases: [(&str, AmricConfig); 4] = [
        ("pipeline_lr_sle", AmricConfig::lr(1e-3)),
        (
            "pipeline_lr_lm",
            AmricConfig::lr(1e-3).with_merge(MergePolicy::LinearMerge),
        ),
        ("pipeline_interp_cluster", AmricConfig::interp(1e-3)),
        (
            "pipeline_interp_linear",
            AmricConfig::interp(1e-3).with_cluster_arrangement(false),
        ),
    ];
    for (name, cfg) in cases {
        let codec = AmricCodec::with_bound(cfg, 8, abs);
        check(name, &compress_with(&codec, &u), &u, abs);
    }
}

#[test]
fn golden_tac() {
    let u = units(6, Dims3::cube(8), 0xD001);
    let abs = resolve_abs_eb(&u, 1e-3);
    let codec = TacCodec::new(1e-3, origins(6));
    check("tac", &compress_with(&codec, &u), &u, abs);
}

#[test]
fn golden_zmesh() {
    let u = units(6, Dims3::cube(8), 0xE001);
    let abs = resolve_abs_eb(&u, 1e-3);
    let codec = ZmeshCodec::new(1e-3, origins(6));
    check("zmesh", &compress_with(&codec, &u), &u, abs);
}

#[test]
fn golden_amrex_baseline() {
    let u = units(4, Dims3::cube(8), 0xF001);
    let abs = resolve_abs_eb(&u, 1e-3);
    let codec = BaselineCodec::new(BaselineConfig::new(1e-3));
    check("amrex_baseline", &compress_with(&codec, &u), &u, abs);
}

#[test]
fn golden_empty_streams() {
    // Zero-unit streams are format too.
    let abs = 1e-3;
    let lr = LrCodec::new(LrConfig::new(abs));
    check("lr_empty", &compress_with(&lr, &[]), &[], abs);
    let interp = InterpCodec::new(InterpConfig::new(abs));
    check("interp_empty", &compress_with(&interp, &[]), &[], abs);
    let pipe = AmricCodec::with_bound(AmricConfig::lr(1e-3), 8, abs);
    check("pipeline_empty", &compress_with(&pipe, &[]), &[], abs);
}
