//! Nyx-like in-situ compression over multiple timesteps: the structure of
//! the paper's evaluation loop — per snapshot, the grids adapt, AMRIC
//! removes redundancy, compresses per field, and writes collectively.
//!
//! Run with: `cargo run --release --example nyx_insitu`

use amr_apps::prelude::*;
use amric::prelude::*;

fn main() {
    let scenario = NyxScenario::new(2026);
    let mesh = AmrRunConfig {
        coarse_dims: (32, 32, 32),
        max_grid_size: 16,
        blocking_factor: 8,
        nranks: 4,
        num_levels: 2,
        fine_fraction: 0.02,
        grid_eff: 0.7,
    };
    let config = AmricConfig::lr(1e-3);
    let mut prev: Option<amr_mesh::AmrHierarchy> = None;
    println!("step  time   fine-boxes  regrid-change   CR      write(model) s");
    for (step, t, h) in TimeSeries::new(&scenario, mesh, 0.25, 4) {
        let change = prev.as_ref().map(|p| regrid_change(p, &h)).unwrap_or(0.0);
        let path = std::env::temp_dir().join(format!("amric-nyx-{step:04}.h5l"));
        let report = write_amric(&path, &h, &config, mesh.blocking_factor).expect("write");
        let (prep, io) = report.modeled_seconds(&rankpar::PfsParams::default());
        println!(
            "{step:>4}  {t:<5.2} {:>10}  {:>12.2}  {:>6.1}  {:>8.3}",
            h.level(1).data.box_array().len(),
            change,
            report.compression_ratio(),
            prep + io,
        );
        std::fs::remove_file(&path).ok();
        prev = Some(h);
    }
    println!("\nThe adapting fine grids (regrid-change > 0) are exactly why offline\nreorderings like zMesh struggle in situ: the layout changes every step.");
}
