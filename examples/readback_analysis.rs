//! Post-hoc analysis on a compressed plotfile: read an AMRIC file back,
//! flatten the AMR hierarchy to uniform resolution (the paper's Fig. 3
//! workflow), and compute simple statistics — without ever materializing
//! the uncompressed plotfile on disk.
//!
//! Run with: `cargo run --release --example readback_analysis`

use amr_apps::prelude::*;
use amric::prelude::*;
use amric::reader::read_amric_hierarchy;

fn main() {
    // Produce a compressed snapshot.
    let scenario = NyxScenario::new(99);
    let mesh = AmrRunConfig {
        coarse_dims: (32, 32, 32),
        max_grid_size: 16,
        blocking_factor: 8,
        nranks: 2,
        num_levels: 2,
        fine_fraction: 0.02,
        grid_eff: 0.7,
    };
    let h = build_hierarchy(&scenario, &mesh, 0.0);
    let path = std::env::temp_dir().join("amric-readback.h5l");
    write_amric(&path, &h, &AmricConfig::lr(1e-3), mesh.blocking_factor).expect("write");

    // Read back: reconstructs per-level MultiFabs from the compressed file.
    let pf = read_amric_hierarchy(&path).expect("read");
    println!("fields: {:?}", pf.field_names);

    // The redundant coarse cells were never stored; analysis uses the
    // fine data wherever it exists, like AMReX post-processing tools.
    let density = 0;
    let fine = &pf.levels[1];
    let (mut lo, mut hi, mut sum, mut n) = (f64::INFINITY, f64::NEG_INFINITY, 0.0, 0u64);
    for (_, fab) in fine.iter() {
        for &v in fab.comp(density) {
            lo = lo.min(v);
            hi = hi.max(v);
            sum += v;
            n += 1;
        }
    }
    println!(
        "fine-level {}: min {:.3e}  max {:.3e}  mean {:.3e}  over {} cells",
        pf.field_names[density],
        lo,
        hi,
        sum / n as f64,
        n
    );

    // Compare a fine-level slice statistic against the original truth.
    let checks = verify_against(&pf, &h, 1e-3);
    println!(
        "verification: mean PSNR {:.2} dB across {} fields, bounds {}",
        checks.iter().map(|c| c.stats.psnr()).sum::<f64>() / checks.len() as f64,
        checks.len(),
        if checks.iter().all(|c| c.bound_ok) {
            "all OK"
        } else {
            "VIOLATED"
        }
    );
    std::fs::remove_file(&path).ok();
}
