//! Quickstart: build a small two-level AMR hierarchy, write it with AMRIC
//! in-situ compression, read it back, and verify the error bound.
//!
//! Run with: `cargo run --release --example quickstart`

use amr_apps::prelude::*;
use amric::prelude::*;
use amric::reader::read_amric_hierarchy;

fn main() {
    // 1. A "simulation": the synthetic Nyx scenario on a 32³ coarse grid
    //    with one refined level, distributed over 4 thread-ranks.
    let scenario = NyxScenario::new(7);
    let mesh = AmrRunConfig {
        coarse_dims: (32, 32, 32),
        max_grid_size: 16,
        blocking_factor: 8,
        nranks: 4,
        num_levels: 2,
        fine_fraction: 0.02,
        grid_eff: 0.7,
    };
    let hierarchy = build_hierarchy(&scenario, &mesh, 0.0);
    println!(
        "built {} levels, {} cells, {:.1} MB raw",
        hierarchy.num_levels(),
        hierarchy.total_cells(),
        hierarchy.snapshot_bytes() as f64 / (1 << 20) as f64
    );

    // 2. Write one snapshot with the AMRIC pipeline (SZ_L/R variant,
    //    range-relative error bound 1e-3).
    let path = std::env::temp_dir().join("amric-quickstart.h5l");
    let config = AmricConfig::lr(1e-3);
    let report =
        write_amric(&path, &hierarchy, &config, mesh.blocking_factor).expect("in-situ write");
    println!(
        "wrote {} -> {} bytes (CR {:.1}x), {} compressor calls",
        report.orig_bytes,
        report.stored_bytes,
        report.compression_ratio(),
        report.ledgers.iter().map(|l| l.filter_calls).sum::<u64>()
    );

    // 3. Read it back and verify the error-bound contract per field.
    let plotfile = read_amric_hierarchy(&path).expect("read back");
    let checks = verify_against(&plotfile, &hierarchy, config.rel_eb);
    for (check, name) in checks.iter().zip(plotfile.field_names.iter()) {
        println!(
            "field {:<22} PSNR {:>6.2} dB  max|err| {:.3e}  bound {}",
            name,
            check.stats.psnr(),
            check.stats.max_abs_err,
            if check.bound_ok { "OK" } else { "VIOLATED" }
        );
        assert!(check.bound_ok);
    }
    std::fs::remove_file(&path).ok();
    println!("quickstart finished: error bounds verified.");
}
