//! WarpX-like in-situ compression: a travelling laser pulse on an
//! elongated domain — the smooth-data regime where AMRIC's compression
//! ratios explode (paper Table 2) and I/O savings peak.
//!
//! Run with: `cargo run --release --example warpx_insitu`

use amr_apps::prelude::*;
use amric::prelude::*;

fn main() {
    let scenario = WarpXScenario::new(11);
    let mesh = AmrRunConfig {
        coarse_dims: (32, 32, 128),
        max_grid_size: 32,
        blocking_factor: 8,
        nranks: 4,
        num_levels: 2,
        fine_fraction: 0.02,
        grid_eff: 0.7,
    };
    println!("method            CR       stored KB   filter calls");
    let h = build_hierarchy(&scenario, &mesh, 0.0);
    for (label, cfg) in [
        ("AMRIC(SZ_L/R)", AmricConfig::lr(1e-3)),
        ("AMRIC(SZ_Interp)", AmricConfig::interp(1e-3)),
    ] {
        // Labels contain '/' (e.g. "SZ_L/R"); keep it out of the filename.
        let path =
            std::env::temp_dir().join(format!("amric-warpx-{}.h5l", label.replace('/', "-")));
        let report = write_amric(&path, &h, &cfg, mesh.blocking_factor).expect("write");
        println!(
            "{label:<16}  {:>6.1}  {:>10.1}  {:>12}",
            report.compression_ratio(),
            report.stored_bytes as f64 / 1024.0,
            report.ledgers.iter().map(|l| l.filter_calls).sum::<u64>()
        );
        std::fs::remove_file(&path).ok();
    }
    // Compare against the AMReX baseline at its looser Table-1 bound.
    let path = std::env::temp_dir().join("amric-warpx-baseline.h5l");
    let report = write_amrex_baseline(&path, &h, &BaselineConfig::new(5e-3)).expect("write");
    println!(
        "{:<16}  {:>6.1}  {:>10.1}  {:>12}",
        "AMReX(1D)",
        report.compression_ratio(),
        report.stored_bytes as f64 / 1024.0,
        report.ledgers.iter().map(|l| l.filter_calls).sum::<u64>()
    );
    std::fs::remove_file(&path).ok();
    println!("\nSmooth pulse data compresses orders of magnitude better through the\n3-D pipeline than through the baseline's 1024-element 1-D chunks.");
}
